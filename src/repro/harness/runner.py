"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness fig11
    python -m repro.harness all --scale-kb 512
    das-harness fig14

``--scale-kb`` sets how many simulated KiB stand in for one paper GB
(default 1024, i.e. 1 MiB per GB); smaller values run faster with the
same shape.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..units import KiB
from .experiments import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="das-harness",
        description="Regenerate the DAS paper's tables and figures in simulation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper table/figure) or 'all'",
    )
    parser.add_argument(
        "--scale-kb",
        type=int,
        default=1024,
        help="simulated KiB per paper GB label (default 1024)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip output-vs-reference verification (faster)",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="also save each report as DIR/<experiment>.json and .csv",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help=(
            "write the machine-readable perf trajectory"
            " (BENCH_serve.json / BENCH_paper.json) under DIR"
        ),
    )
    parser.add_argument(
        "--chaos-spec",
        default=None,
        metavar="SPEC",
        help=(
            "chaos-bench only: run one extra DAS cell under this fault"
            " schedule, e.g. 'crash:s1@1.0;recover:s1@3.0;slow:s2@2.0x0.1'"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "serve/chaos/autoscale benches: re-run one representative cell"
            " with request tracing on, write DIR/<cell>.trace.json"
            " (Perfetto-loadable) and <cell>.attribution.json, and check"
            " the traced run is bit-identical to the untraced one"
        ),
    )
    parser.add_argument(
        "--batch-max",
        type=int,
        default=None,
        metavar="N",
        help=(
            "serve-bench only: merge up to N same-(file, kernel) requests"
            " into one fan-out (1 disables batching; default: bench default)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failures = 0
    timed = []
    for name in names:
        kwargs = dict(scale=args.scale_kb * KiB, verify=not args.no_verify)
        if name == "serve-bench" and args.batch_max is not None:
            kwargs["batch_max"] = args.batch_max
        if name == "chaos-bench" and args.chaos_spec is not None:
            kwargs["chaos_spec"] = args.chaos_spec
        if args.trace_dir is not None and name in (
            "serve-bench",
            "chaos-bench",
            "autoscale-bench",
        ):
            kwargs["trace_dir"] = args.trace_dir
        begin = time.perf_counter()
        report = run_experiment(name, **kwargs)
        timed.append((report, time.perf_counter() - begin))
        print(report.to_text())
        print()
        if args.output_dir:
            from pathlib import Path

            from .export import save_report

            base = Path(args.output_dir)
            for suffix in (".json", ".csv"):
                save_report(report, base / f"{name}{suffix}")
        if not report.all_checks_pass:
            failures += 1
    if args.bench_dir:
        from .trajectory import write_trajectory

        for path in write_trajectory(args.bench_dir, timed, args.scale_kb):
            print(f"wrote {path}", file=sys.stderr)
    if failures:
        print(f"{failures} experiment(s) had failing shape checks", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
