"""Export experiment reports as JSON or CSV artifacts.

Every :class:`~repro.harness.experiments.ExperimentReport` can be
persisted for downstream plotting — the rows are exactly the series the
paper's figures plot.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from ..errors import HarnessError
from .experiments import ExperimentReport


def report_to_json(report: ExperimentReport) -> str:
    """The full report (rows + checks + notes) as pretty JSON."""
    return json.dumps(
        {
            "experiment": report.experiment,
            "title": report.title,
            "notes": report.notes,
            "rows": report.rows,
            "checks": [
                {"claim": claim, "passed": ok} for claim, ok in report.checks
            ],
            "all_checks_pass": report.all_checks_pass,
        },
        indent=2,
        default=str,
    )


def report_to_csv(report: ExperimentReport) -> str:
    """The measured rows as CSV (checks/notes are JSON-only)."""
    if not report.rows:
        return ""
    columns: list[str] = []
    for row in report.rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(report.rows)
    return buffer.getvalue()


def save_report(report: ExperimentReport, path: str | Path) -> Path:
    """Write the report; the suffix picks the format (.json / .csv)."""
    path = Path(path)
    if path.suffix == ".json":
        text = report_to_json(report)
    elif path.suffix == ".csv":
        text = report_to_csv(report)
    else:
        raise HarnessError(
            f"unknown report format {path.suffix!r}; use .json or .csv"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
