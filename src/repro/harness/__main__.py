"""``python -m repro.harness`` — see :mod:`repro.harness.runner`."""

import sys

from .runner import main

sys.exit(main())
