"""Experiment platform: cluster construction and scheme-aware ingest.

The paper's testbed allocates N nodes and configures half as storage
nodes, half as compute nodes ("the default ratio is 1:1.  With this
configuration, NAS, DAS and TS would have the same computation
capability").  :func:`build_platform` reproduces that split.

Ingest policy: files feeding TS and NAS runs are striped round-robin
(the parallel-file-system default the paper evaluates).  Files feeding
DAS runs are placed in the optimizer's improved distribution at ingest
— data written *through* the DAS layer is arranged for its expected
operations ("the dynamic active storage calculates an appropriate data
distribution method ... and arranges the data"), so the measured
operation does not pay a redistribution it would only pay once per
dataset lifetime.  The cold-start case (round-robin data adopted by
DAS at first use) is measured separately by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..config import PlatformSpec, SimConfig
from ..core import KernelFeatures, LayoutOptimizer
from ..errors import HarnessError
from ..hw.cluster import Cluster
from ..kernels import default_registry
from ..pfs.filesystem import ParallelFileSystem
from ..units import KiB
from ..workloads import DatasetSpec


@dataclass(frozen=True)
class ExperimentPlatform:
    """Everything fixed across one experiment's runs."""

    spec: PlatformSpec = field(default_factory=PlatformSpec)
    strip_size: int = 64 * KiB
    #: Ratio of storage nodes to total nodes (paper default 1:1).
    storage_fraction: float = 0.5
    seed: int = 20120910


def build_platform(
    n_nodes: int,
    platform: Optional[ExperimentPlatform] = None,
    env=None,
) -> Tuple[Cluster, ParallelFileSystem]:
    """A cluster of ``n_nodes`` with the paper's storage/compute split.

    ``env`` threads a shared :class:`~repro.sim.Environment` through to
    :meth:`Cluster.build` so several platforms (fleet cells) can live on
    one simulation clock; the default builds a fresh environment.
    """
    platform = platform or ExperimentPlatform()
    n_storage = max(1, round(n_nodes * platform.storage_fraction))
    n_compute = n_nodes - n_storage
    if n_compute < 1:
        raise HarnessError(f"{n_nodes} nodes leave no compute partition")
    cluster = Cluster.build(
        n_compute=n_compute,
        n_storage=n_storage,
        spec=platform.spec,
        sim_config=SimConfig(seed=platform.seed, strip_size=platform.strip_size),
        env=env,
    )
    pfs = ParallelFileSystem(cluster, strip_size=platform.strip_size)
    return cluster, pfs


def make_input(dataset: DatasetSpec, operator: str) -> np.ndarray:
    """The raster an operator consumes.

    Flow-accumulation consumes the *direction* raster produced by
    flow-routing (paper Section I), so its input is derived from the
    DEM; the others take the generated dataset directly.
    """
    data = dataset.generate()
    if operator == "flow-accumulation":
        return default_registry.get("flow-routing").reference(data)
    return data


def ingest_for_scheme(
    pfs: ParallelFileSystem,
    scheme: str,
    name: str,
    data: np.ndarray,
    operator: str,
) -> None:
    """Place ``data`` the way the scheme's I/O stack would have."""
    client = pfs.client(pfs.cluster.compute_names[0])
    if scheme == "DAS":
        # DAS-aware ingest: plan the improved distribution up front.
        tmp_layout = pfs.round_robin()
        meta = pfs.metadata.create(
            f"__plan__{name}", data.nbytes, tmp_layout, dtype=data.dtype,
            shape=data.shape,
        )
        features = KernelFeatures.from_registry()
        plan = LayoutOptimizer().plan(meta, features.get(operator))
        pfs.metadata.unlink(f"__plan__{name}")
        layout = plan.layout if plan.layout is not None else tmp_layout
        client.ingest(name, data, layout)
    else:
        client.ingest(name, data, pfs.round_robin())
