"""autoscale-bench: SLO-driven partition scaling under a load surge.

One workload, three deployments.  Every cell offers the same ramped
load — calm, a 4x surge, calm again — over the same files from the same
seed; what differs is who owns capacity:

* ``static-min`` pins the files to the small partition (the cheap
  steady-state deployment) and shows the surge breaching the SLO;
* ``static-max`` pins them to the large partition (the provisioned-for-
  peak deployment) and shows the surge absorbed — at 2x the storage
  footprint for the whole run;
* ``autoscale`` starts on the small partition and lets the
  :class:`~repro.serve.autoscale.AutoscaleController` resize it: the
  windowed p99 breach triggers scale-ups, the post-surge calm triggers
  scale-downs, and the run ends back at the minimum.

The static cells run the controller in *observer mode* (clamp pinned to
their partition size, so it can watch but never act) — that is what
gives them the same windowed-p99 trace the autoscale cell has, without
any resize machinery running.

The checks encode the controller's contract: the surge really breaches
the static-min SLO; autoscaling scales up and the windowed p99 comes
back under the deadline; the calm tail drains capacity back to the
minimum; clamp and cooldown are honoured; every admitted request
settles exactly once in every cell; and every request completed by both
the autoscale and static-min cells produced bit-identical output bytes
(per-request CRCs agree), so resizes never corrupted an in-flight
result.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..serve import AutoscalePolicy, ServeConfig, ServeSystem
from ..units import KiB
from .common import (
    SERVE_NODES,
    build_serve_platform,
    ingest_files,
    ingest_partition,
    scaled_duration,
    serve_platform,
)
from .experiments import ExperimentReport
from .platform import ExperimentPlatform
from .serve_bench import DEADLINE, serve_tenants

#: Partition clamp of the autoscale cell (also the two static sizes).
MIN_SERVERS = 2
MAX_SERVERS = 4

#: Seconds of offered load per cell at the default scale.
DURATION = 12.0

#: Offered-load multiplier during the surge phase.
SURGE = 4.0

#: The control loop of the autoscale cell.  The observer policies of the
#: static cells reuse every knob but pin the clamp to one size.
POLICY = AutoscalePolicy(
    min_servers=MIN_SERVERS,
    max_servers=MAX_SERVERS,
    interval=0.25,
    p99_high=DEADLINE,
    p99_low=DEADLINE / 2,
    queue_high=8,
    breach_ticks=2,
    calm_ticks=4,
    cooldown=1.0,
)

#: Cell name -> (clamp_min, clamp_max, ingest partition size).
CELLS = (
    ("static-min", MIN_SERVERS, MIN_SERVERS, MIN_SERVERS),
    ("static-max", MAX_SERVERS, MAX_SERVERS, MAX_SERVERS),
    ("autoscale", MIN_SERVERS, MAX_SERVERS, MIN_SERVERS),
)


def surge_ramp(duration: float) -> Tuple[Tuple[float, float], ...]:
    """Calm quarter, sustained surge, calm final third."""
    return ((0.0, 1.0), (duration / 4, SURGE), (2 * duration / 3, 0.25))


def autoscale_cell(
    clamp_min: int,
    clamp_max: int,
    ingest_servers: int,
    duration: float,
    platform: Optional[ExperimentPlatform] = None,
    tracer=None,
    telemetry=None,
) -> Tuple[Dict[str, object], ServeSystem]:
    """One ramped serving run; returns the summary and the live system
    (the bench reads the controller trace and per-request digests)."""
    platform = serve_platform(platform)
    cluster, pfs = build_serve_platform(platform)
    rng = np.random.default_rng(platform.seed)
    subset = pfs.server_names[:ingest_servers]
    ingest_files(pfs, "DAS", rng, policy="partition", servers=subset)
    policy = AutoscalePolicy(
        min_servers=clamp_min,
        max_servers=clamp_max,
        interval=POLICY.interval,
        p99_high=POLICY.p99_high,
        p99_low=POLICY.p99_low,
        queue_high=POLICY.queue_high,
        breach_ticks=POLICY.breach_ticks,
        calm_ticks=POLICY.calm_ticks,
        cooldown=POLICY.cooldown,
    )
    config = ServeConfig(
        tenants=serve_tenants(),
        scheme="DAS",
        duration=duration,
        deadline=DEADLINE,
        load=1.0,
        concurrency=8,
        queue_capacity=12,
        ramp=surge_ramp(duration),
        autoscale=policy,
        tracer=tracer,
        telemetry=telemetry,
    )
    system = ServeSystem(pfs, config)
    return system.run(), system


def _row(name: str, summary: Dict[str, object], system: ServeSystem) -> dict:
    t = summary["tenants"]["_all"]  # type: ignore[index]
    a = summary["autoscale"]  # type: ignore[index]
    trace = system.autoscaler.trace
    return {
        "cell": name,
        "clamp": f"{a['clamp'][0]}-{a['clamp'][1]}",  # type: ignore[index]
        "active_final": a["active"],
        "scale_ups": a["scale_ups"],
        "scale_downs": a["scale_downs"],
        "moved_kb": round(a["moved_bytes"] / KiB, 1),  # type: ignore[operator]
        "completed": t["completed"],
        "late": t["late"],
        "expired": t["expired"],
        "rejected": t["rejected"],
        "p99_s": round(t["lat_p99"], 4),
        "peak_win_p99_s": round(max((o["p99"] for o in trace), default=0.0), 4),
        "final_win_p99_s": round(trace[-1]["p99"], 4) if trace else 0.0,
    }


def autoscale_bench(
    platform=None,
    scale=None,
    verify=True,
    trace_dir=None,
    trace_sample: int = 1,
    telemetry_dir=None,
) -> ExperimentReport:
    """The autoscaling comparison (registered as ``autoscale-bench``).

    ``scale`` maps onto the run *duration* exactly as in serve-bench:
    the default 1 MiB gives :data:`DURATION` seconds per cell, smaller
    scales shorten it proportionally (floor 6 s — the control loop needs
    a few cooldown periods of calm tail to demonstrate the scale-down).
    """
    duration = scaled_duration(scale, DURATION, 6.0)

    rows = []
    results: Dict[str, Tuple[Dict[str, object], ServeSystem]] = {}
    for name, lo, hi, ingest in CELLS:
        summary, system = autoscale_cell(lo, hi, ingest, duration, platform=platform)
        results[name] = (summary, system)
        rows.append(_row(name, summary, system))
    by_cell = {r["cell"]: r for r in rows}

    auto_summary, auto_system = results["autoscale"]
    auto = auto_summary["autoscale"]  # type: ignore[index]
    actions = auto_system.autoscaler.actions
    trace = auto_system.autoscaler.trace
    last_up = max(
        (a.at for a in actions if a.direction == "up"), default=float("inf")
    )
    after_up = [o for o in trace if o["t"] > last_up and o["samples"] > 0]

    def breach_ticks(cell: str):
        """Control ticks whose windowed p99 exceeded the deadline."""
        return [
            o
            for o in results[cell][1].autoscaler.trace
            if o["p99"] > DEADLINE
        ]

    auto_breach = breach_ticks("autoscale")
    static_breach = breach_ticks("static-min")
    auto_clear = max((o["t"] for o in auto_breach), default=0.0)
    static_clear = max((o["t"] for o in static_breach), default=0.0)

    # The surge-vs-recovery comparisons need the full-length run: at
    # reduced scale the scale-ups land so close to the end that neither
    # the recovery nor the calm-tail scale-down fits before the drain.
    full_length = duration >= DURATION
    checks = []
    if full_length:
        checks += [
            (
                f"the surge breaches the static-min SLO (peak windowed p99"
                f" {by_cell['static-min']['peak_win_p99_s']:g}s >"
                f" {DEADLINE:g}s deadline)",
                by_cell["static-min"]["peak_win_p99_s"] > DEADLINE,
            ),
            (
                "provisioning for peak absorbs it: static-max sheds and"
                " expires less than static-min",
                by_cell["static-max"]["rejected"]
                + by_cell["static-max"]["expired"]
                < by_cell["static-min"]["rejected"]
                + by_cell["static-min"]["expired"],
            ),
            (
                f"the controller scales up under the surge"
                f" ({auto['scale_ups']} scale-up(s))",
                auto["scale_ups"] >= 1,  # type: ignore[operator]
            ),
            (
                "after the last scale-up the windowed p99 comes back under"
                " the deadline and ends the run there",
                bool(after_up) and after_up[-1]["p99"] <= DEADLINE,
            ),
            (
                "scaling up shortens the breach: the autoscale cell spends"
                f" fewer control ticks over the deadline ({len(auto_breach)}"
                f" vs {len(static_breach)}) and clears it sooner"
                f" ({auto_clear:.2f}s vs {static_clear:.2f}s)",
                len(auto_breach) < len(static_breach)
                and auto_clear < static_clear,
            ),
            (
                "capacity returns: the calm tail scales back down to the"
                f" minimum ({auto['scale_downs']} scale-down(s), final"
                f" partition {auto['active']})",
                auto["scale_downs"] >= 1 and auto["active"] == MIN_SERVERS,  # type: ignore[operator]
            ),
        ]
    checks += [
        (
            f"clamp honoured: the partition never leaves"
            f" [{MIN_SERVERS}, {MAX_SERVERS}]",
            all(MIN_SERVERS <= o["active"] <= MAX_SERVERS for o in trace)
            and all(
                MIN_SERVERS <= a.to_servers <= MAX_SERVERS for a in actions
            ),
        ),
        (
            f"cooldown honoured: consecutive resizes are"
            f" >= {POLICY.cooldown:g}s apart",
            all(
                later.at - earlier.at >= POLICY.cooldown
                for earlier, later in zip(actions, actions[1:])
            ),
        ),
        (
            "observer cells never resize: pinned clamps produce zero actions",
            all(
                results[c][0]["autoscale"]["scale_ups"]  # type: ignore[index]
                == results[c][0]["autoscale"]["scale_downs"]  # type: ignore[index]
                == 0
                for c in ("static-min", "static-max")
            ),
        ),
        (
            "conservation: every admitted request settled exactly once in"
            " every cell",
            all(s["admitted"] == s["settled"] for s, _ in results.values()),
        ),
    ]

    # Exactly-once across resizes: both cells saw the same deterministic
    # arrival stream, so any request completed by both must have produced
    # the same output bytes — a resize mid-flight may never change what a
    # request computes.
    auto_digests = auto_system.executor.digests
    static_digests = results["static-min"][1].executor.digests
    shared = sorted(set(auto_digests) & set(static_digests))
    checks.append(
        (
            f"resizes never corrupt results: all {len(shared)} requests"
            " completed by both autoscale and static-min have identical"
            " per-request output CRCs",
            bool(shared)
            and all(auto_digests[r] == static_digests[r] for r in shared),
        )
    )

    if verify:
        replay, _ = autoscale_cell(
            MIN_SERVERS, MAX_SERVERS, MIN_SERVERS, duration, platform=platform
        )
        checks.append(
            (
                "bit-identical replay: the autoscale cell reproduces the"
                " same summary (actions included) from the same seed",
                replay == auto_summary,
            )
        )

    if trace_dir is not None:
        from .tracing import traced_replay

        trace_checks, _ = traced_replay(
            "autoscale",
            lambda tracer: autoscale_cell(
                MIN_SERVERS, MAX_SERVERS, MIN_SERVERS, duration,
                platform=platform, tracer=tracer,
            )[0],
            auto_summary,
            trace_dir,
            meta={"bench": "autoscale-bench", "cell": "autoscale",
                  "duration": duration},
            sample=1.0 / max(1, int(trace_sample)),
        )
        checks += trace_checks

    aux_checks = []
    if telemetry_dir is not None:
        from .telemetry import telemetry_replay

        # The full-length surge plays the whole incident on the sampler:
        # queue-growth trips first (the leading indicator), saturation
        # and both burn pages follow, and the controller's scale-up must
        # resolve every one of them before the horizon.  Reduced-scale
        # runs skip the expectations for the same reason they skip the
        # surge/recovery checks.
        expect = (
            ("availability-burn", "latency-burn", "queue-growth",
             "queue-saturated")
            if full_length
            else ()
        )

        def _telemetered(config):
            summary, system = autoscale_cell(
                MIN_SERVERS, MAX_SERVERS, MIN_SERVERS, duration,
                platform=platform, telemetry=config,
            )
            return summary, system.telemetry

        telemetry_checks, _ = telemetry_replay(
            "autoscale",
            _telemetered,
            auto_summary,
            telemetry_dir,
            meta={"bench": "autoscale-bench", "cell": "autoscale",
                  "duration": duration},
            expect_fired=expect,
            expect_resolved=expect,
        )
        aux_checks += telemetry_checks

    return ExperimentReport(
        experiment="autoscale-bench",
        title="SLO-driven autoscaling: static partitions vs the controller",
        rows=rows,
        checks=checks,
        aux_checks=aux_checks,
        notes=(
            f"{SERVE_NODES} nodes, ramped load 1x -> {SURGE:g}x -> 0.25x over"
            f" {duration:g}s, deadline {DEADLINE:g}s; clamp"
            f" [{MIN_SERVERS}, {MAX_SERVERS}], tick {POLICY.interval:g}s,"
            f" cooldown {POLICY.cooldown:g}s; static cells run the controller"
            " as a pinned-clamp observer."
            + (
                ""
                if full_length
                else " Reduced scale: surge/recovery comparisons skipped"
                " (the lifecycle needs the full duration)."
            )
        ),
    )
