"""``python -m repro.harness report`` — regenerate docs/RESULTS.md.

The results document is generated, never hand-edited: this subcommand
renders it from the committed measurement record (``benchmarks/``,
``benchmarks/history/``, ``benchmarks/attribution/``) via
:func:`repro.report.generate_results` and writes it in place.  With
``--check`` nothing is written; the freshly rendered text is compared
byte-for-byte against the committed file and drift is a non-zero exit
— the same gate `scripts/check_results.py` runs in CI.

Run from the repository root::

    PYTHONPATH=src python -m repro.harness report
    PYTHONPATH=src python -m repro.harness report --check
    PYTHONPATH=src python -m repro.harness report --output /tmp/RESULTS.md
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path
from typing import List, Optional

#: Lines of unified diff shown on drift before truncating.
DIFF_LINES = 40


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="das-harness report",
        description=(
            "Regenerate docs/RESULTS.md from the committed bench snapshots,"
            " history ledger and attribution fixtures."
        ),
    )
    parser.add_argument(
        "--benchmarks-dir",
        default="benchmarks",
        metavar="DIR",
        help="directory of committed BENCH_*.json snapshots (default: benchmarks)",
    )
    parser.add_argument(
        "--history-dir",
        default="benchmarks/history",
        metavar="DIR",
        help=(
            "append-only JSONL ledger directory rendered as the trend"
            " tables (default: benchmarks/history; may be absent)"
        ),
    )
    parser.add_argument(
        "--attribution-dir",
        default="benchmarks/attribution",
        metavar="DIR",
        help=(
            "directory of committed <label>.attribution.json critical-path"
            " fixtures rendered as text flames (default:"
            " benchmarks/attribution; may be absent)"
        ),
    )
    parser.add_argument(
        "--telemetry-dir",
        default="benchmarks/telemetry",
        metavar="DIR",
        help=(
            "directory of committed <label>.telemetry.json sampler"
            " artifacts rendered as the fleet health timeline (default:"
            " benchmarks/telemetry; may be absent)"
        ),
    )
    parser.add_argument(
        "--output",
        default="docs/RESULTS.md",
        metavar="PATH",
        help="where the rendered report goes (default: docs/RESULTS.md)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "write nothing; exit 1 with a diff if the committed file at"
            " --output does not match the regenerated text byte for byte"
        ),
    )
    return parser


def drift_diff(committed: str, regenerated: str, path: str) -> List[str]:
    """Unified-diff lines (truncated) between committed and regenerated."""
    diff = list(
        difflib.unified_diff(
            committed.splitlines(),
            regenerated.splitlines(),
            fromfile=f"{path} (committed)",
            tofile=f"{path} (regenerated)",
            lineterm="",
        )
    )
    if len(diff) > DIFF_LINES:
        diff = diff[:DIFF_LINES] + [
            f"... ({len(diff) - DIFF_LINES} more diff lines)"
        ]
    return diff


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from ..report import generate_results

    text = generate_results(
        bench_dir=args.benchmarks_dir,
        history_dir=args.history_dir,
        attribution_dir=args.attribution_dir,
        telemetry_dir=args.telemetry_dir,
    )
    out = Path(args.output)
    if args.check:
        if not out.exists():
            print(f"FAIL: {out} does not exist — run without --check to"
                  " generate it", file=sys.stderr)
            return 1
        committed = out.read_text(encoding="utf-8")
        if committed != text:
            print(f"FAIL: {out} drifted from the committed inputs —"
                  " regenerate it (python -m repro.harness report):",
                  file=sys.stderr)
            for line in drift_diff(committed, text, str(out)):
                print(line, file=sys.stderr)
            return 1
        print(f"{out} matches its inputs byte for byte")
        return 0
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text, encoding="utf-8")
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
