"""Telemetry-replay support shared by the serving benches.

Each bench can re-run ONE representative cell with a live
:class:`~repro.telemetry.TelemetrySampler` attached
(``--telemetry-dir``).  The sampled run must be *indistinguishable*
from the unsampled one — same summary dict, same per-request CRCs, same
simulated latencies — the same zero-perturbation contract the tracer
holds (the only allowed difference is the ``telemetry`` summary block
itself, which exists only because sampling was configured).  On top of
that the replay asserts the alert ledger is well-formed and, when the
cell declares them, that the expected alerts fired and resolved.

Writes ``<label>.telemetry.json`` (schema ``repro.telemetry/1``,
validated by ``scripts/check_telemetry.py``) under the telemetry
directory.  Nothing here runs unless a directory is given, so the
default bench trajectories stay bit-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

from ..sim.core import untallied
from ..telemetry import TelemetryConfig, TelemetrySampler


def _ledgers(block: Dict[str, object]):
    for scope in block["scopes"].values():  # type: ignore[union-attr]
        alerts = scope.get("alerts")
        if alerts:
            yield from alerts["ledger"]


def _rules(block: Dict[str, object], key: str) -> set:
    names = set()
    for scope in block["scopes"].values():  # type: ignore[union-attr]
        alerts = scope.get("alerts")
        if alerts:
            names.update(alerts[key])
    return names


def telemetry_replay(
    label: str,
    run_cell: Callable[[TelemetryConfig], Tuple[Dict[str, object], TelemetrySampler]],
    baseline: Dict[str, object],
    telemetry_dir,
    meta: Dict[str, object],
    expect_fired: Sequence[str] = (),
    expect_resolved: Sequence[str] = (),
) -> Tuple[List[tuple], List[Path]]:
    """Re-run one bench cell sampled; returns (checks, written paths).

    ``run_cell`` receives a :class:`TelemetryConfig` and must return the
    cell's summary dict plus the (finalized) sampler that produced it;
    ``baseline`` is the unsampled summary of the *same* cell.
    ``expect_fired`` / ``expect_resolved`` name alert rules the cell is
    required to have fired / resolved somewhere in its ledger.
    """
    config = TelemetryConfig()
    # The replay is verification overhead, not bench workload: keep its
    # events out of the process-wide tally so the recorded trajectory is
    # bit-identical with or without --telemetry-dir.
    with untallied():
        summary, sampler = run_cell(config)
    block = summary.get("telemetry")

    out = Path(telemetry_dir)
    out.mkdir(parents=True, exist_ok=True)
    doc = sampler.payload(label, meta=dict(meta, interval=config.interval))
    path = out / f"{label}.telemetry.json"
    path.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )

    stripped = {k: v for k, v in summary.items() if k != "telemetry"}
    entries = list(_ledgers(block)) if block else []
    ordered = all(
        e["resolved_at"] is None or e["resolved_at"] > e["fired_at"]
        for e in entries
    )
    fired = _rules(block, "fired") if block else set()
    resolved = _rules(block, "resolved") if block else set()
    checks = [
        (
            f"{label}: sampling is non-perturbing — the sampled cell's"
            " summary (per-request CRCs and latencies included) equals the"
            " unsampled run bit for bit outside its own telemetry block",
            block is not None and stripped == baseline,
        ),
        (
            f"{label}: sampler took {sampler.samples} boundary samples and"
            " the alert ledger is well-formed (every resolve strictly after"
            " its fire)",
            sampler.samples > 0 and ordered,
        ),
    ]
    missing_fired = sorted(set(expect_fired) - fired)
    if expect_fired:
        checks.append(
            (
                f"{label}: declared alerts fired"
                f" ({', '.join(sorted(expect_fired))};"
                f" ledger fired: {sorted(fired)})",
                not missing_fired,
            )
        )
    missing_resolved = sorted(set(expect_resolved) - resolved)
    if expect_resolved:
        checks.append(
            (
                f"{label}: declared alerts resolved before the horizon"
                f" ({', '.join(sorted(expect_resolved))};"
                f" ledger resolved: {sorted(resolved)})",
                not missing_resolved,
            )
        )
    return checks, [path]
