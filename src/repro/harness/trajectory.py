"""Machine-readable perf trajectory: ``BENCH_serve.json`` / ``BENCH_paper.json``.

Every harness invocation can record what it measured into a stable JSON
shape — per-row simulated makespans and bytes per link class, wall-clock
seconds per experiment, batch hit rates, the shape-check verdicts — so a
future change can diff its numbers against a checked-in baseline instead
of re-deriving them from logs.

The serve-bench goes to :data:`SERVE_BENCH_FILE`; the paper regenerators
(table1, fig10–14, ext-oversub) are folded into :data:`PAPER_BENCH_FILE`;
the chaos-bench goes to :data:`FAULTS_BENCH_FILE`; the autoscale-bench
goes to :data:`AUTOSCALE_BENCH_FILE`; the scenario-bench goes to
:data:`SCENARIOS_BENCH_FILE`.
Baselines live under ``benchmarks/`` in the repo; CI regenerates the
serve file at reduced scale and uploads it as an artifact.  The payload
shape is documented in docs/BENCHMARKS.md.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple

from .common import BenchTiming
from .experiments import ExperimentReport

SERVE_BENCH_FILE = "BENCH_serve.json"
PAPER_BENCH_FILE = "BENCH_paper.json"
FAULTS_BENCH_FILE = "BENCH_faults.json"
AUTOSCALE_BENCH_FILE = "BENCH_autoscale.json"
SCENARIOS_BENCH_FILE = "BENCH_scenarios.json"
ENGINE_BENCH_FILE = "BENCH_engine.json"
FLEET_BENCH_FILE = "BENCH_fleet.json"

#: Experiments recorded into BENCH_paper.json.
PAPER_EXPERIMENTS = (
    "table1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ext-oversub",
)

#: Canonical ``(filename, bench family)`` order of the whole trajectory
#: directory.  Consumers that sweep ``benchmarks/`` — the report
#: generator (:mod:`repro.report`), the regression gate — iterate this
#: tuple so their output order is pinned by the writer, not by
#: directory listing or insertion accidents.
BENCH_FILES = (
    (SERVE_BENCH_FILE, "serve"),
    (PAPER_BENCH_FILE, "paper"),
    (FAULTS_BENCH_FILE, "faults"),
    (AUTOSCALE_BENCH_FILE, "autoscale"),
    (SCENARIOS_BENCH_FILE, "scenarios"),
    (ENGINE_BENCH_FILE, "engine"),
    (FLEET_BENCH_FILE, "fleet"),
)

#: Bump when the payload shape changes incompatibly.
SCHEMA_VERSION = 1

#: A report paired with the timing of producing it: a
#: :class:`~repro.harness.common.BenchTiming` from
#: :func:`~repro.harness.common.bench_timer`, or a bare wall-seconds
#: float (older callers; recorded with ``events_dispatched`` 0/omitted).
TimedReport = Tuple[ExperimentReport, object]


def _as_timing(timed: object) -> BenchTiming:
    if isinstance(timed, BenchTiming):
        return timed
    return BenchTiming(wall_seconds=float(timed))  # type: ignore[arg-type]


def trajectory_payload(
    bench: str, scale_kb: int, entries: Iterable[TimedReport]
) -> dict:
    """The JSON document for one BENCH file.

    Rows are embedded verbatim: paper rows carry the simulated makespan
    (``time_s``) and bytes per link class (``client_MB``/``server_MB``);
    serve rows carry the latency tail, header/halo wire bytes and the
    batch hit rate.  Every experiment entry and the top level also
    carry the uniform perf fields — ``wall_seconds`` (volatile, host
    dependent), ``events_dispatched`` (exactly reproducible) and
    ``events_per_wall_second`` — so engine-throughput regressions show
    up in any bench, not just the dedicated engine microbenchmark.
    """
    timed = [(report, _as_timing(t)) for report, t in entries]
    wall_total = sum(t.wall_seconds for _, t in timed)
    events_total = sum(t.events_dispatched for _, t in timed)
    return {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "scale_kb": scale_kb,
        "wall_seconds_total": round(wall_total, 3),
        "events_dispatched_total": events_total,
        "events_per_wall_second": (
            round(events_total / wall_total) if wall_total > 0 else 0
        ),
        "experiments": {
            report.experiment: {
                "title": report.title,
                "wall_seconds": round(timing.wall_seconds, 3),
                "events_dispatched": timing.events_dispatched,
                "events_per_wall_second": round(timing.events_per_wall_second),
                "all_checks_pass": report.all_checks_pass,
                "checks": [
                    {"claim": claim, "passed": ok} for claim, ok in report.checks
                ],
                "notes": report.notes,
                "rows": report.rows,
            }
            for report, timing in timed
        },
    }


def write_trajectory(
    out_dir, entries: Iterable[TimedReport], scale_kb: int
) -> List[Path]:
    """Split timed reports into the BENCH files they belong to and write
    them under ``out_dir``; returns the paths written (serve first)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    entries = list(entries)
    selectors = {
        "serve": lambda r: r.experiment == "serve-bench",
        "paper": lambda r: r.experiment in PAPER_EXPERIMENTS,
        "faults": lambda r: r.experiment == "chaos-bench",
        "autoscale": lambda r: r.experiment == "autoscale-bench",
        "scenarios": lambda r: r.experiment == "scenario-bench",
        "engine": lambda r: r.experiment == "engine-bench",
        "fleet": lambda r: r.experiment == "fleet-bench",
    }
    written: List[Path] = []
    for filename, bench in BENCH_FILES:
        group = [(r, w) for r, w in entries if selectors[bench](r)]
        if not group:
            continue
        path = out_dir / filename
        payload = trajectory_payload(bench, scale_kb, group)
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        written.append(path)
    return written
