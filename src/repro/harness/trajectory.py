"""Machine-readable perf trajectory: ``BENCH_serve.json`` / ``BENCH_paper.json``.

Every harness invocation can record what it measured into a stable JSON
shape — per-row simulated makespans and bytes per link class, wall-clock
seconds per experiment, batch hit rates, the shape-check verdicts — so a
future change can diff its numbers against a checked-in baseline instead
of re-deriving them from logs.

The serve-bench goes to :data:`SERVE_BENCH_FILE`; the paper regenerators
(table1, fig10–14, ext-oversub) are folded into :data:`PAPER_BENCH_FILE`;
the chaos-bench goes to :data:`FAULTS_BENCH_FILE`; the autoscale-bench
goes to :data:`AUTOSCALE_BENCH_FILE`; the scenario-bench goes to
:data:`SCENARIOS_BENCH_FILE`.
Baselines live under ``benchmarks/`` in the repo; CI regenerates the
serve file at reduced scale and uploads it as an artifact.  The payload
shape is documented in docs/BENCHMARKS.md.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple

from .experiments import ExperimentReport

SERVE_BENCH_FILE = "BENCH_serve.json"
PAPER_BENCH_FILE = "BENCH_paper.json"
FAULTS_BENCH_FILE = "BENCH_faults.json"
AUTOSCALE_BENCH_FILE = "BENCH_autoscale.json"
SCENARIOS_BENCH_FILE = "BENCH_scenarios.json"

#: Experiments recorded into BENCH_paper.json.
PAPER_EXPERIMENTS = (
    "table1",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ext-oversub",
)

#: Bump when the payload shape changes incompatibly.
SCHEMA_VERSION = 1

#: A report paired with the wall-clock seconds it took to produce.
TimedReport = Tuple[ExperimentReport, float]


def trajectory_payload(
    bench: str, scale_kb: int, entries: Iterable[TimedReport]
) -> dict:
    """The JSON document for one BENCH file.

    Rows are embedded verbatim: paper rows carry the simulated makespan
    (``time_s``) and bytes per link class (``client_MB``/``server_MB``);
    serve rows carry the latency tail, header/halo wire bytes and the
    batch hit rate.
    """
    entries = list(entries)
    return {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "scale_kb": scale_kb,
        "wall_seconds_total": round(sum(w for _, w in entries), 3),
        "experiments": {
            report.experiment: {
                "title": report.title,
                "wall_seconds": round(wall, 3),
                "all_checks_pass": report.all_checks_pass,
                "checks": [
                    {"claim": claim, "passed": ok} for claim, ok in report.checks
                ],
                "notes": report.notes,
                "rows": report.rows,
            }
            for report, wall in entries
        },
    }


def write_trajectory(
    out_dir, entries: Iterable[TimedReport], scale_kb: int
) -> List[Path]:
    """Split timed reports into the BENCH files they belong to and write
    them under ``out_dir``; returns the paths written (serve first)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    entries = list(entries)
    groups = (
        (
            SERVE_BENCH_FILE,
            "serve",
            [(r, w) for r, w in entries if r.experiment == "serve-bench"],
        ),
        (
            PAPER_BENCH_FILE,
            "paper",
            [(r, w) for r, w in entries if r.experiment in PAPER_EXPERIMENTS],
        ),
        (
            FAULTS_BENCH_FILE,
            "faults",
            [(r, w) for r, w in entries if r.experiment == "chaos-bench"],
        ),
        (
            AUTOSCALE_BENCH_FILE,
            "autoscale",
            [(r, w) for r, w in entries if r.experiment == "autoscale-bench"],
        ),
        (
            SCENARIOS_BENCH_FILE,
            "scenarios",
            [(r, w) for r, w in entries if r.experiment == "scenario-bench"],
        ),
    )
    written: List[Path] = []
    for filename, bench, group in groups:
        if not group:
            continue
        path = out_dir / filename
        payload = trajectory_payload(bench, scale_kb, group)
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        written.append(path)
    return written
