"""chaos-bench: fault injection against the serving layer.

Sweeps fault intensity against TS/NAS/DAS serving runs and measures
what the fault subsystem claims to provide:

* **Parity** — with the fault plane off, every scheme's serving summary
  is *equal* to the plain serve-bench cell from the same seed: building
  the fault subsystem changed nothing for fault-free runs.
* **Fault tolerance** — crashing one data server mid-workload, a file
  ingested with full neighbour replication (``halo_strips == group``)
  still completes 100% of requests under TS and DAS: reads fail over to
  halo replicas, offload decisions degrade to normal I/O while the
  server is down, and the run recovers when it returns.  NAS — blind
  offload, no decision plane — loses the requests that land on the dead
  server, but detection fails them cleanly instead of hanging them.
* **The replication is load-bearing** — the same crash against an
  unreplicated (round-robin) file finishes strictly fewer requests.
* **Recovery costs nothing when nothing fails** — a run with the full
  recovery policy armed but no faults injected produces bit-identical
  request results (CRC digests) to the recovery-off run.

A final *storm* cell layers every fault kind (crash, disk slowdown,
link cut) on one DAS run to exercise timeouts, retries and hedged
reads together; it asserts conservation, not throughput.

Every cell is deterministic from the root seed.  The report lands in
``benchmarks/BENCH_faults.json`` via ``--bench-dir``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..faults import FaultPlan, RecoveryPolicy
from ..serve import ServeConfig, ServeSystem
from .common import (
    RASTER,
    SERVE_NODES,
    build_serve_platform,
    ingest_files,
    replicated_ingest,
    scaled_duration,
    serve_platform,
)
from .experiments import ExperimentReport
from .platform import ExperimentPlatform
from .serve_bench import DURATION, serve_cell, serve_tenants

#: Schemes swept through the crash cells, in reporting order.
CHAOS_SCHEMES = ("TS", "NAS", "DAS")

#: Offered-load multiplier for every chaos cell (moderate: the point is
#: fault response, not queueing collapse).
CHAOS_LOAD = 1.0

#: Arrival-to-finish budget for faulted cells: generous enough that a
#: failover (fast-fail + one replica read) never expires a request, so
#: unavailability in the rows means *lost* requests, not slow ones.
CHAOS_DEADLINE = 2.5

#: When the crash lands / heals, as fractions of the cell duration.
CRASH_AT = 0.3
RECOVER_AT = 0.7

#: Recovery policy armed in every faulted cell.  ``hedge_delay`` is
#: below the slowed-disk read time so the storm cell exercises hedging.
CHAOS_RECOVERY = RecoveryPolicy(
    rpc_timeout=0.25,
    max_attempts=2,
    backoff=0.02,
    hedge_delay=0.1,
)

#: Disk throughput multiplier of the storm cell's slow phase.
STORM_SLOW_FACTOR = 0.05


def chaos_cell(
    scheme: str,
    duration: float,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    replicated: bool = True,
    deadline: float = CHAOS_DEADLINE,
    platform: Optional[ExperimentPlatform] = None,
    tracer=None,
    telemetry=None,
) -> Dict[str, object]:
    """One faulted serving run: fresh platform, chosen ingest, summary.

    Mirrors :func:`~repro.harness.serve_bench.serve_cell` exactly apart
    from the ingest policy and the fault/recovery configuration, so a
    cell with ``faults=None, recovery=None, replicated=False`` and the
    serve-bench deadline reproduces a serve-bench cell bit-identically.
    """
    summary, _ = chaos_cell_system(
        scheme,
        duration,
        faults=faults,
        recovery=recovery,
        replicated=replicated,
        deadline=deadline,
        platform=platform,
        tracer=tracer,
        telemetry=telemetry,
    )
    return summary


def chaos_cell_system(
    scheme: str,
    duration: float,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    replicated: bool = True,
    deadline: float = CHAOS_DEADLINE,
    platform: Optional[ExperimentPlatform] = None,
    tracer=None,
    telemetry=None,
):
    """Like :func:`chaos_cell` but also returns the system (telemetry
    replays read the sampler off it for artifact export)."""
    platform = serve_platform(platform)
    cluster, pfs = build_serve_platform(platform)
    rng = np.random.default_rng(platform.seed)
    ingest_files(pfs, scheme, rng, policy="replicated" if replicated else "scheme")
    config = ServeConfig(
        tenants=serve_tenants(),
        scheme=scheme,
        duration=duration,
        deadline=deadline,
        load=CHAOS_LOAD,
        concurrency=8,
        queue_capacity=12,
        faults=faults,
        recovery=recovery,
        decision_ttl=1.0 if recovery is not None and scheme == "DAS" else None,
        tracer=tracer,
        telemetry=telemetry,
    )
    system = ServeSystem(pfs, config)
    return system.run(), system


def single_crash_plan(pfs, duration: float) -> FaultPlan:
    """Crash the second storage server mid-workload, heal it later."""
    victim = pfs.cluster.storage_names[1]
    return FaultPlan.single_crash(
        victim, at=CRASH_AT * duration, recover_at=RECOVER_AT * duration
    )


def storm_plan(pfs, duration: float) -> FaultPlan:
    """Every fault kind in one plan: crash, disk slowdown, link cut."""
    storage = pfs.cluster.storage_names
    compute = pfs.cluster.compute_names
    return FaultPlan.parse(
        ";".join(
            (
                f"slow:{storage[2]}@{0.15 * duration:g}x{STORM_SLOW_FACTOR:g}",
                f"crash:{storage[1]}@{CRASH_AT * duration:g}",
                f"cut:{compute[0]}-{storage[3]}@{0.4 * duration:g}",
                f"heal:{compute[0]}-{storage[3]}@{0.55 * duration:g}",
                f"recover:{storage[1]}@{RECOVER_AT * duration:g}",
                f"restore:{storage[2]}@{0.8 * duration:g}",
            )
        )
    )


def _row(cell: str, summary: Dict[str, object], replicated: bool) -> dict:
    t = summary["tenants"]["_all"]  # type: ignore[index]
    faults = summary.get("faults", {})  # type: ignore[union-attr]
    return {
        "cell": cell,
        "scheme": summary["scheme"],
        "replicated": replicated,
        "generated": summary["generated"],
        "completed": t["completed"],
        "late": t["late"],
        "expired": t["expired"],
        "failed": t["failed"],
        "availability": round(t["availability"], 4),
        "throughput_rps": round(t["throughput"], 3),
        "p99_s": round(t["lat_p99"], 4),
        "failover_reads": faults.get("failover_reads", 0),
        "hedged_reads": faults.get("hedged_reads", 0),
        "hedge_wins": faults.get("hedge_wins", 0),
        "rpc_timeouts": faults.get("rpc_timeouts", 0),
        "retries": faults.get("retries", 0),
        "degraded_decisions": faults.get("degraded_decisions", 0),
        "crashes": faults.get("crashes", 0),
        "recoveries": faults.get("recoveries", 0),
        "mttr_s": round(float(faults.get("mttr", 0.0)), 4),
        "downtime_s": round(float(faults.get("downtime_seconds", 0.0)), 4),
    }


def chaos_bench(
    platform=None,
    scale=None,
    verify=True,
    schemes: Sequence[str] = CHAOS_SCHEMES,
    chaos_spec: Optional[str] = None,
    trace_dir=None,
    trace_sample: int = 1,
    telemetry_dir=None,
) -> ExperimentReport:
    """The fault-injection sweep (registered as ``chaos-bench``).

    ``scale`` follows the harness convention (simulated bytes per paper
    GB) and maps onto the per-cell duration exactly as in serve-bench.
    ``chaos_spec`` optionally appends one extra DAS cell driven by a
    user-supplied fault schedule (see ``FaultPlan.parse``).
    """
    duration = scaled_duration(scale, DURATION, 1.5)
    # One platform just to name servers for the plans; cells build their
    # own identical platforms from the same seed.
    _, plan_pfs = build_serve_platform(platform)
    crash = single_crash_plan(plan_pfs, duration)
    storm = storm_plan(plan_pfs, duration)

    rows = []
    summaries: Dict[str, Dict[str, object]] = {}

    def run(cell: str, scheme: str, replicated: bool = True, **kw) -> Dict[str, object]:
        summary = chaos_cell(
            scheme, duration, replicated=replicated, platform=platform, **kw
        )
        summaries[cell] = summary
        rows.append(_row(cell, summary, replicated))
        return summary

    # Parity: fault plane off == the plain serve-bench cell, bit for bit.
    parity_ok = True
    if verify:
        for scheme in schemes:
            chaotic = chaos_cell(
                scheme,
                duration,
                replicated=False,
                deadline=0.5,
                platform=platform,
            )
            plain = serve_cell(scheme, CHAOS_LOAD, duration=duration, platform=platform)
            parity_ok = parity_ok and chaotic == plain

    # Recovery armed, nothing fails: request results must be identical.
    baseline = run("baseline", "DAS")
    armed = run("recovery-armed", "DAS", recovery=CHAOS_RECOVERY)

    # The headline cells: one data server crashes mid-workload.
    for scheme in schemes:
        run(f"crash-{scheme}", scheme, faults=crash, recovery=CHAOS_RECOVERY)
    unrep = run(
        "crash-TS-unreplicated",
        "TS",
        replicated=False,
        faults=crash,
        recovery=CHAOS_RECOVERY,
    )

    # Degraded-mode offload decisions need a layout the engine *accepts*
    # for offload: the optimizer's planned distribution (boundary halo
    # only).  The crash then forces the engine's fallback to normal I/O
    # while the server is down; interior strips are unreplicated, so
    # this cell measures the fallback, not 100% availability.
    degraded = None
    if "DAS" in schemes:
        degraded = run(
            "degraded-DAS",
            "DAS",
            replicated=False,
            faults=crash,
            recovery=CHAOS_RECOVERY,
        )

    # Storm: every fault kind at once against DAS.
    run("storm-DAS", "DAS", faults=storm, recovery=CHAOS_RECOVERY)

    if chaos_spec:
        run(
            "custom-DAS",
            "DAS",
            faults=FaultPlan.parse(chaos_spec),
            recovery=CHAOS_RECOVERY,
        )

    crash_cells = [summaries[f"crash-{s}"] for s in schemes]
    #: Schemes whose serving path can survive the crash: TS reads fail
    #: over to replicas, DAS additionally falls back from offload.  NAS
    #: offloads unconditionally with no decision plane, so execs landing
    #: on the dead server fail cleanly instead — the contrast the bench
    #: exists to show.
    survivors = [s for s in schemes if s != "NAS"]

    def faults_of(s: Dict[str, object]) -> Dict[str, object]:
        return s["faults"]  # type: ignore[return-value]

    def availability(s: Dict[str, object]) -> float:
        return s["tenants"]["_all"]["availability"]  # type: ignore[index]

    def finished(s: Dict[str, object]) -> int:
        t = s["tenants"]["_all"]  # type: ignore[index]
        return t["completed"] + t["late"]  # type: ignore[index]

    checks = []
    if verify:
        checks.append(
            (
                "parity: with the fault plane off every scheme's summary"
                " equals the plain serve-bench cell from the same seed",
                parity_ok,
            )
        )
    checks.append(
        (
            "recovery armed on a fault-free run: per-request result CRCs"
            " identical to the recovery-off run",
            armed["result_digest"] == baseline["result_digest"],
        )
    )
    checks.append(
        (
            "recovery armed on a fault-free run stays fully available",
            availability(armed) == 1.0,
        )
    )
    crash_avail = ", ".join(
        "{}={:g}".format(s, availability(summaries["crash-" + s])) for s in schemes
    )
    checks.append(
        (
            "single data-server crash with halo_strips == group: 100% of"
            f" requests complete under TS and DAS ({crash_avail})",
            all(availability(summaries["crash-" + s]) == 1.0 for s in survivors),
        )
    )
    if "NAS" in schemes:
        nas = summaries["crash-NAS"]
        checks.append(
            (
                "NAS has no decision plane: blind offload into the crash"
                " loses requests, but detection fails them cleanly"
                " (availability < 1, zero hung requests)",
                availability(nas) < 1.0 and nas["admitted"] == nas["settled"],
            )
        )
    checks.append(
        (
            "failover actually happened: halo-replica reads served strips"
            " of the crashed server in every surviving crash cell",
            all(
                faults_of(summaries["crash-" + s])["failover_reads"] > 0
                for s in survivors
            ),
        )
    )
    checks.append(
        (
            "the injector did its round trip: one crash, one recovery,"
            " MTTR recorded in every crash cell",
            all(
                faults_of(c)["crashes"] == 1
                and faults_of(c)["recoveries"] == 1
                and faults_of(c)["mttr"] > 0
                for c in crash_cells
            ),
        )
    )
    if degraded is not None:
        paths = degraded["paths"]  # type: ignore[index]
        checks.append(
            (
                "degraded-mode decisions: on the planned (offloadable)"
                " layout DAS stops offloading to the partially-down file"
                " and falls back to normal I/O, then offloads again",
                faults_of(degraded)["degraded_decisions"] > 0
                and paths["offload"] > 0,  # type: ignore[index]
            )
        )
    checks.append(
        (
            "replication is load-bearing: the same crash against an"
            " unreplicated file finishes strictly fewer requests"
            f" ({finished(unrep)} vs {finished(summaries['crash-TS'])})",
            finished(unrep) < finished(summaries["crash-TS"])
            and availability(unrep) < 1.0,
        )
    )
    storm_faults = faults_of(summaries["storm-DAS"])
    checks.append(
        (
            "storm cell applied every fault kind and settled every"
            " admitted request",
            storm_faults["events_applied"] == len(storm)
            and storm_faults["disk_degraded"] == 1
            and storm_faults["link_cuts"] == 1
            and summaries["storm-DAS"]["admitted"]
            == summaries["storm-DAS"]["settled"],
        )
    )
    checks.append(
        (
            "conservation: every admitted request settled exactly once"
            " in every cell",
            all(s["admitted"] == s["settled"] for s in summaries.values()),
        )
    )

    if trace_dir is not None:
        from .tracing import traced_replay

        # The storm cell exercises the whole fault vocabulary — crash,
        # disk slowdown, link cut, timeouts, retries, hedges — so its
        # trace carries every instant-event kind the exporter knows.
        trace_checks, _ = traced_replay(
            "chaos_storm_DAS",
            lambda tracer: chaos_cell(
                "DAS", duration, faults=storm, recovery=CHAOS_RECOVERY,
                platform=platform, tracer=tracer,
            ),
            summaries["storm-DAS"],
            trace_dir,
            meta={"bench": "chaos-bench", "cell": "storm-DAS",
                  "duration": duration},
            sample=1.0 / max(1, int(trace_sample)),
        )
        checks += trace_checks

    aux_checks = []
    if telemetry_dir is not None:
        from .telemetry import telemetry_replay

        # The NAS crash cell is the one whose faults *show*: NAS offloads
        # with no decision plane, so execs landing on the dead server
        # fail until it recovers — the availability and latency budgets
        # burn on both windows, page, and resolve once the server heals.
        # (DAS cells mask the same faults via fallback + hedging; their
        # ledgers staying empty is the bench's whole point.)
        if "NAS" in schemes:
            t_cell, t_scheme = "crash-NAS", "NAS"
            expect = ("availability-burn", "latency-burn")
        else:
            t_cell, t_scheme = "storm-DAS", "DAS"
            expect = ()

        def _telemetered(config):
            summary, system = chaos_cell_system(
                t_scheme,
                duration,
                faults=storm if t_cell == "storm-DAS" else crash,
                recovery=CHAOS_RECOVERY,
                platform=platform,
                telemetry=config,
            )
            return summary, system.telemetry

        telemetry_checks, _ = telemetry_replay(
            f"chaos_{t_cell.replace('-', '_')}",
            _telemetered,
            summaries[t_cell],
            telemetry_dir,
            meta={"bench": "chaos-bench", "cell": t_cell, "duration": duration},
            expect_fired=expect,
            expect_resolved=expect,
        )
        aux_checks += telemetry_checks

    return ExperimentReport(
        experiment="chaos-bench",
        title="Fault injection: availability and failover, TS/NAS/DAS",
        rows=rows,
        checks=checks,
        aux_checks=aux_checks,
        notes=(
            f"{SERVE_NODES} nodes (half storage), {RASTER[0]}x{RASTER[1]} rasters,"
            f" load x{CHAOS_LOAD:g} for {duration:g}s per cell; crash at"
            f" {CRASH_AT:g}, recovery at {RECOVER_AT:g} of the run; faulted-cell"
            f" deadline {CHAOS_DEADLINE:g}s; recovery policy"
            f" rpc_timeout={CHAOS_RECOVERY.rpc_timeout:g}s,"
            f" {CHAOS_RECOVERY.max_attempts} attempts,"
            f" hedge at {CHAOS_RECOVERY.hedge_delay:g}s."
            + (f" Custom spec cell: {chaos_spec!r}." if chaos_spec else "")
        ),
    )
