"""Single measured runs: one (scheme, kernel, dataset, cluster) cell.

Every figure in the paper is a grid of these cells.  A run builds a
fresh cluster (no state leaks between cells), ingests the input the way
the scheme's stack would have placed it, serves the operation, and
verifies the output against the sequential reference before reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import HarnessError
from ..kernels import default_registry
from ..schemes import SCHEMES, SchemeResult
from ..workloads import DatasetSpec, dataset_for_label
from .platform import ExperimentPlatform, build_platform, ingest_for_scheme, make_input


@dataclass
class RunRecord:
    """One measured cell, with provenance."""

    scheme: str
    operator: str
    label_gb: float
    n_nodes: int
    sim_seconds: float
    client_mb: float
    server_mb: float
    offloaded: bool
    verified: bool
    bandwidth: float  # dataset bytes / sim second

    @property
    def row(self) -> dict:
        return {
            "scheme": self.scheme,
            "operator": self.operator,
            "data_gb": self.label_gb,
            "nodes": self.n_nodes,
            "time_s": self.sim_seconds,
            "client_MB": self.client_mb,
            "server_MB": self.server_mb,
            "offloaded": self.offloaded,
            "verified": self.verified,
        }


def run_cell(
    scheme: str,
    operator: str,
    dataset: DatasetSpec,
    n_nodes: int,
    platform: Optional[ExperimentPlatform] = None,
    verify: bool = True,
    pipeline_length: int = 1,
) -> RunRecord:
    """Build, run and verify one cell; returns its record."""
    if scheme not in SCHEMES:
        raise HarnessError(f"unknown scheme {scheme!r}; pick from {sorted(SCHEMES)}")
    cluster, pfs = build_platform(n_nodes, platform)
    data = make_input(dataset, operator)
    ingest_for_scheme(pfs, scheme, "input", data, operator)

    scheme_obj = SCHEMES[scheme](pfs)
    done = scheme_obj.run_operation(
        operator, "input", "output", pipeline_length=pipeline_length
    )
    result: SchemeResult = cluster.run(until=done)

    verified = True
    if verify:
        reference = default_registry.get(operator).reference(data)
        if result.offloaded:
            produced = pfs.client(cluster.compute_names[0]).collect("output")
        else:
            source = scheme_obj if scheme == "TS" else scheme_obj._fallback
            produced = source.client_output(data.shape)
        verified = bool(np.array_equal(produced, reference))
        if not verified:
            raise HarnessError(
                f"{scheme}/{operator} produced an output that differs from the"
                " sequential reference — simulation correctness bug"
            )

    return RunRecord(
        scheme=scheme,
        operator=operator,
        label_gb=dataset.label_gb,
        n_nodes=n_nodes,
        sim_seconds=result.elapsed,
        client_mb=result.traffic.client_bytes / 1e6,
        server_mb=result.traffic.server_bytes / 1e6,
        offloaded=result.offloaded,
        verified=verified,
        bandwidth=result.bandwidth,
    )


def run_label_cell(
    scheme: str,
    operator: str,
    label_gb: float,
    n_nodes: int,
    platform: Optional[ExperimentPlatform] = None,
    scale: Optional[int] = None,
    verify: bool = True,
) -> RunRecord:
    """Convenience: build the dataset from its paper GB label."""
    kwargs = {} if scale is None else {"scale": scale}
    dataset = dataset_for_label(label_gb, **kwargs)
    return run_cell(scheme, operator, dataset, n_nodes, platform, verify)
