"""Traced-replay support shared by the serving benches.

Each bench can re-run ONE representative cell with a live
:class:`~repro.obs.Tracer` attached (``--trace-dir``).  The traced run
must be *indistinguishable* from the untraced one — same summary dict,
same per-request CRCs, same simulated latencies — which is exactly the
zero-perturbation contract of :mod:`repro.obs`.  On top of that the
replay asserts the tentpole acceptance bounds: the exported
Chrome/Perfetto JSON is structurally valid, the span tree covers at
least 95% of every finished request's latency, and the critical-path
stage decomposition sums to each request's latency within 1%.

Nothing here runs unless a trace directory is given, so the default
bench trajectories (``benchmarks/BENCH_*.json``) stay bit-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from ..metrics.critical_path import critical_path
from ..obs import Tracer, trace_document, validate_trace

#: Acceptance bounds (see ISSUE/ROADMAP): span coverage and the
#: attribution-sum error of the critical-path decomposition.
MIN_COVERAGE = 0.95
MAX_ATTRIBUTION_ERROR = 0.01


def traced_replay(
    label: str,
    run_cell: Callable[[Tracer], Dict[str, object]],
    baseline: Dict[str, object],
    trace_dir,
    meta: Dict[str, object],
    sample: float = 1.0,
) -> Tuple[List[tuple], List[Path]]:
    """Re-run one bench cell traced; returns (checks, written paths).

    ``run_cell`` receives a fresh unbound tracer and must return the
    cell's summary dict; ``baseline`` is the untraced summary of the
    *same* cell.  Writes ``<label>.trace.json`` (Perfetto-loadable) and
    ``<label>.attribution.json`` (the per-stage time-attribution table
    plus per-request rows) under ``trace_dir``.

    ``sample`` < 1 traces only every Nth request (deterministic by
    request id; see :class:`~repro.obs.Tracer`).  The non-perturbation
    identity and the coverage/attribution bounds still hold — the
    latter over the sampled requests, which are the only ones with
    span trees.
    """
    tracer = Tracer(sample=sample)
    meta = dict(meta, sample_every=tracer.sample_every)
    summary = run_cell(tracer)

    out = Path(trace_dir)
    out.mkdir(parents=True, exist_ok=True)
    doc = trace_document(tracer, meta=meta)
    trace_path = out / f"{label}.trace.json"
    trace_path.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    problems = validate_trace(doc)

    report = critical_path(tracer)
    attribution_path = out / f"{label}.attribution.json"
    attribution_path.write_text(
        json.dumps(report.as_dict(), indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    min_cov = report.min_coverage()
    max_err = report.max_attribution_error()
    checks = [
        (
            f"{label}: tracing is non-perturbing — the traced cell's summary"
            " (per-request CRCs and latencies included) equals the untraced"
            " run bit for bit",
            summary == baseline,
        ),
        (
            f"{label}: exported trace is structurally valid Perfetto JSON"
            f" ({len(tracer.spans)} spans, {len(problems)} problems)",
            len(tracer.spans) > 0 and not problems,
        ),
        (
            f"{label}: spans cover >= {MIN_COVERAGE:.0%} of every finished"
            f" request's latency (min coverage {min_cov:.4f} over"
            f" {report.count} requests)",
            report.count > 0 and min_cov >= MIN_COVERAGE,
        ),
        (
            f"{label}: critical-path stages sum to each request's latency"
            f" within {MAX_ATTRIBUTION_ERROR:.0%} (max error {max_err:.6f})",
            max_err <= MAX_ATTRIBUTION_ERROR,
        ),
    ]
    return checks, [trace_path, attribution_path]
