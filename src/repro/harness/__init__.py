"""Experiment harness: platform presets, per-figure regenerators, CLI."""

from .experiments import (
    DEFAULT_NODES,
    EXPERIMENTS,
    PAPER_KERNELS,
    ExperimentReport,
    run_experiment,
)
from .export import report_to_csv, report_to_json, save_report
from .platform import (
    ExperimentPlatform,
    build_platform,
    ingest_for_scheme,
    make_input,
)
from .runs import RunRecord, run_cell, run_label_cell

__all__ = [
    "DEFAULT_NODES",
    "EXPERIMENTS",
    "ExperimentPlatform",
    "ExperimentReport",
    "PAPER_KERNELS",
    "RunRecord",
    "build_platform",
    "ingest_for_scheme",
    "make_input",
    "run_cell",
    "run_experiment",
    "report_to_csv",
    "report_to_json",
    "run_label_cell",
    "save_report",
]
