"""engine-bench: microbenchmark of the discrete-event simulation core.

The serving and paper benches measure the whole stack — kernels, PFS,
fluid network, scheduler — so an engine regression hides inside
application noise.  This bench isolates the engine: four synthetic
workloads exercise the scheduling hot paths (heap churn, process
resume, store handoff, resource queues, condition races and timer
cancellation) with zero NumPy work, plus one small end-to-end serving
cell for a requests-per-wall-second figure on the real stack.

Every workload is deterministic — no RNG, fixed arithmetic delay
patterns — so its ``events`` column is exactly reproducible and doubles
as a scheduling-contract check: with ``verify=True`` the timeout storm
is run twice and must dispatch the identical event count.  The wall
columns (``wall_seconds``, ``events_per_wall_second``,
``requests_per_wall_second``) are host-dependent and volatile;
``scripts/check_regression.py`` strips them before comparing payloads
and applies a tolerance to the walls instead.

Results land in ``benchmarks/BENCH_engine.json`` via the shared
trajectory writer (``--bench-dir``); the payload shape is documented in
docs/BENCHMARKS.md and the profiling workflow in the same file.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.core import Environment
from ..sim.resources import Resource, Store
from .common import bench_timer, scaled_duration
from .experiments import ExperimentReport

#: (processes, rounds) of the timeout storm at scale 1024 KiB.
STORM_SHAPE = (200, 500)

#: (pairs, rounds) of the store ping-pong at scale 1024 KiB.
PINGPONG_SHAPE = (50, 400)

#: (processes, rounds, capacity) of the resource contention workload.
CONTENTION_SHAPE = (100, 150, 8)

#: (racers, rounds) of the condition-race / timer-cancellation workload.
RACE_SHAPE = (100, 50)

#: Serving-cell parameters: scheme, load multiplier, batch window.
SERVE_CELL = ("DAS", 2.0, 8)

#: Serving-cell duration (simulated seconds) at the default scale.
SERVE_CELL_DURATION = 3.0


def _size(base: int, scale: Optional[float], floor: int = 4) -> int:
    """Scale an iteration count by the harness byte-scale convention."""
    if scale is None:
        return base
    return max(floor, int(base * float(scale) / (1024 * 1024)))


# -- synthetic engine workloads ---------------------------------------------
def timeout_storm(procs: int, rounds: int) -> int:
    """Heap churn: ``procs`` processes sleeping staggered prime-ish delays.

    The delay pattern keeps the heap well mixed (no two processes march
    in lockstep), which is the worst realistic case for the scheduler's
    sift costs.  Returns the environment's dispatched-event count.
    """
    env = Environment()

    def sleeper(env, i):
        delay = ((i * 31) % 97 + 1) * 1e-3
        for k in range(rounds):
            yield env.timeout(delay)
            delay = ((i * 31 + k * 7) % 97 + 1) * 1e-3

    for i in range(procs):
        env.process(sleeper(env, i))
    env.run()
    return env.dispatched


def store_pingpong(pairs: int, rounds: int) -> int:
    """Process handoff through :class:`Store` put/get pairs."""
    env = Environment()

    def ping(env, a, b):
        for k in range(rounds):
            yield a.put(k)
            yield b.get()

    def pong(env, a, b):
        for _ in range(rounds):
            yield a.get()
            yield b.put(True)

    for _ in range(pairs):
        a, b = Store(env), Store(env)
        env.process(ping(env, a, b))
        env.process(pong(env, a, b))
    env.run()
    return env.dispatched


def resource_contention(procs: int, rounds: int, capacity: int) -> int:
    """``procs`` processes fighting over a ``capacity``-slot resource."""
    env = Environment()
    res = Resource(env, capacity=capacity)

    def worker(env, i):
        hold = ((i % 13) + 1) * 1e-4
        for _ in range(rounds):
            req = res.request()
            yield req
            yield env.timeout(hold)
            res.release(req)

    for i in range(procs):
        env.process(worker(env, i))
    env.run()
    return env.dispatched


def condition_races(racers: int, rounds: int) -> int:
    """`any_of` races between a signal and a deadline timer.

    Half the races are won by the signal (the loser timeout is left to
    the engine's lazy cancellation), half by the deadline — both sides
    of the condition teardown path stay hot.
    """
    env = Environment()

    def poker(env, signals):
        for k, ev in enumerate(signals):
            yield env.timeout(1e-4)
            if k % 2 == 0:
                ev.succeed(k)

    def racer(env, i, signals):
        for k in range(rounds):
            ev = signals[(i * rounds + k) % len(signals)]
            deadline = env.timeout(((i + k) % 7 + 1) * 1e-3)
            yield env.any_of((ev, deadline))

    signals = [env.event() for _ in range(racers * 2)]
    env.process(poker(env, signals))
    for i in range(racers):
        env.process(racer(env, i, signals))
    env.run()
    return env.dispatched


ENGINE_WORKLOADS = (
    ("timeout-storm", timeout_storm, STORM_SHAPE),
    ("store-pingpong", store_pingpong, PINGPONG_SHAPE),
    ("resource-contention", resource_contention, CONTENTION_SHAPE),
    ("condition-races", condition_races, RACE_SHAPE),
)


# -- the bench --------------------------------------------------------------
def engine_bench(
    platform=None, scale: Optional[float] = None, verify: bool = True
) -> ExperimentReport:
    """Run the engine microbenchmarks plus one small serving cell."""
    rows: List[Dict[str, object]] = []
    checks = []

    for name, fn, shape in ENGINE_WORKLOADS:
        args = tuple(_size(n, scale) if i < 2 else n for i, n in enumerate(shape))
        with bench_timer() as timing:
            dispatched = fn(*args)
        rows.append(
            {
                "bench": name,
                "shape": "x".join(str(a) for a in args),
                "events": dispatched,
                "wall_seconds": round(timing.wall_seconds, 4),
                "events_per_wall_second": round(timing.events_per_wall_second),
            }
        )
        checks.append((f"{name}: engine made progress", dispatched > 0))
        if verify:
            repeat = fn(*args)
            checks.append(
                (f"{name}: identical event count on re-run (deterministic)",
                 repeat == dispatched)
            )

    # One end-to-end serving cell: the requests-per-wall-second figure
    # on the real stack (kernels, PFS, fluid network, scheduler).
    from .serve_bench import serve_cell

    scheme, load, batch_max = SERVE_CELL
    duration = scaled_duration(scale, SERVE_CELL_DURATION, 0.25)
    with bench_timer() as timing:
        summary = serve_cell(scheme, load, duration=duration, batch_max=batch_max)
    settled = int(summary["settled"])  # type: ignore[arg-type]
    wall = timing.wall_seconds
    rows.append(
        {
            "bench": "serve-cell",
            "shape": f"{scheme}_x{load}_b{batch_max}_d{duration:g}",
            "events": timing.events_dispatched,
            "settled": settled,
            "wall_seconds": round(wall, 4),
            "events_per_wall_second": round(timing.events_per_wall_second),
            "requests_per_wall_second": round(settled / wall, 1) if wall > 0 else 0.0,
        }
    )
    checks.append(("serve-cell: requests settled", settled > 0))
    checks.append(
        ("serve-cell: output digest present",
         bool(summary.get("result_digest", {}).get("count")))  # type: ignore[union-attr]
    )

    return ExperimentReport(
        experiment="engine-bench",
        title="Simulation-engine throughput microbenchmarks",
        rows=rows,
        checks=checks,
        notes=(
            "events columns are exactly reproducible; wall_seconds,"
            " events_per_wall_second and requests_per_wall_second are"
            " host-dependent (volatile in regression checks)."
        ),
    )
