"""Shared plumbing for the serving benches.

Every serving bench (`serve_bench`, `chaos_bench`, `autoscale_bench`,
`scenario_bench`) runs cells over the same throttled platform: build a
cluster, seed an RNG from the platform, ingest the workload's files
under some placement policy, run a :class:`~repro.serve.ServeSystem`.
Before this module each bench carried its own copy of that plumbing
(plus its own duration-scaling arithmetic and argparse boilerplate);
now they share one implementation, and the committed ``BENCH_*.json``
baselines pin that the refactor did not perturb a single event: the
helpers here reproduce the original construction sequence — RNG draw
order included — exactly.
"""

from __future__ import annotations

import argparse
import gc
import math
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..config import PlatformSpec
from ..core import KernelFeatures, LayoutOptimizer
from ..errors import HarnessError
from ..pfs.layout import RoundRobinLayout
from ..sim.core import events_dispatched_total
from ..units import KiB, MiB, us
from ..workloads import fractal_dem
from .platform import ExperimentPlatform, build_platform, ingest_for_scheme

#: Node count of the serving benches (half storage, half compute).
SERVE_NODES = 8

#: PFS strip size of the serving benches.
SERVE_STRIP = 4 * KiB

#: Raster shape ingested per file (196608-byte float64 raster).
RASTER = (128, 192)

#: Files the serving benches ingest and tenants read.
SERVE_FILES = ("dem_a", "dem_b")

#: Throttled platform: a few requests/second saturate 4 storage nodes,
#: so queueing dynamics appear at simulable request counts.  Ratios
#: (NIC below disk, kernels cheap per element vs. moving the element)
#: match the paper's premise.
SERVE_SPEC = PlatformSpec(
    nic_bandwidth=4 * MiB,
    nic_latency=500 * us,
    rpc_overhead=200 * us,
    disk_bandwidth=16 * MiB,
    kernel_cost={
        "default": 16e-6,
        "flow-routing": 24e-6,
        "flow-accumulation": 32e-6,
        "gaussian": 40e-6,
    },
)

#: Ingest placement policies :func:`ingest_files` understands.
INGEST_POLICIES = ("scheme", "replicated", "partition")


class BenchTiming:
    """Wall-clock and engine-event accounting for one timed bench region.

    ``wall_seconds`` is host time and varies run to run;
    ``events_dispatched`` is the number of simulation events the engine
    processed inside the region and is exactly reproducible — together
    they give ``events_per_wall_second``, the engine-throughput figure
    every ``BENCH_*.json`` payload records (see docs/BENCHMARKS.md).
    """

    __slots__ = ("wall_seconds", "events_dispatched")

    def __init__(self, wall_seconds: float = 0.0, events_dispatched: int = 0):
        self.wall_seconds = wall_seconds
        self.events_dispatched = events_dispatched

    @property
    def events_per_wall_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_dispatched / self.wall_seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BenchTiming(wall_seconds={self.wall_seconds:.3f},"
            f" events_dispatched={self.events_dispatched})"
        )


@contextmanager
def bench_timer(quiesce_gc: bool = True) -> Iterator[BenchTiming]:
    """Time a bench region; yields a :class:`BenchTiming` filled on exit.

    With ``quiesce_gc`` (the default) the cyclic garbage collector is
    collected once up front and then disabled for the region: the
    simulator churns through millions of short-lived events whose
    refcounts already reclaim them, and letting the cycle detector walk
    those arenas mid-run costs ~10% wall for nothing.  This is purely a
    wall-clock lever — object lifetimes and float arithmetic are
    untouched, so simulated results are bit-identical either way.  The
    collector is re-enabled (and prior state restored) on exit, even on
    error.
    """
    timing = BenchTiming()
    restore_gc = quiesce_gc and gc.isenabled()
    if restore_gc:
        gc.collect()
        gc.disable()
    events_before = events_dispatched_total()
    begin = time.perf_counter()
    try:
        yield timing
    finally:
        timing.wall_seconds = time.perf_counter() - begin
        timing.events_dispatched = events_dispatched_total() - events_before
        if restore_gc:
            gc.enable()


def scaled_duration(scale: Optional[float], base: float, floor: float) -> float:
    """Map the harness ``scale`` convention onto a cell duration.

    ``scale`` is "simulated bytes per paper GB"; the default 1 MiB gives
    ``base`` seconds per cell and smaller scales shorten the run
    proportionally, never below ``floor``.
    """
    if scale is None:
        return base
    return max(floor, base * float(scale) / (1024 * KiB))


def serve_platform(
    platform: Optional[ExperimentPlatform] = None,
) -> ExperimentPlatform:
    """The serving benches' default platform (throttled spec, 4 KiB strips)."""
    return platform or ExperimentPlatform(spec=SERVE_SPEC, strip_size=SERVE_STRIP)


def build_serve_platform(platform: Optional[ExperimentPlatform] = None):
    """``(cluster, pfs)`` for one serving cell on the bench platform."""
    return build_platform(SERVE_NODES, serve_platform(platform))


def replicated_ingest(pfs, name: str, data: np.ndarray) -> None:
    """Ingest ``data`` fully neighbour-replicated: one group per server
    with ``halo_strips == group``, so every strip lives on its primary
    and both neighbouring servers and any single crash is survivable."""
    n_strips = max(1, math.ceil(data.nbytes / pfs.strip_size))
    group = max(1, math.ceil(n_strips / len(pfs.server_names)))
    layout = pfs.replicated_grouped(group, halo_strips=group)
    pfs.client(pfs.cluster.compute_names[0]).ingest(name, data, layout)


def ingest_partition(pfs, name, data, operator, servers) -> None:
    """DAS-aware ingest confined to the ``servers`` partition.

    Mirrors :func:`~repro.harness.platform.ingest_for_scheme` but plans
    the improved distribution over a *subset* of the storage servers, so
    a cell can start on the small partition the way a cost-conscious
    deployment would.
    """
    client = pfs.client(pfs.cluster.compute_names[0])
    tmp_layout = RoundRobinLayout(servers, pfs.strip_size)
    meta = pfs.metadata.create(
        f"__plan__{name}", data.nbytes, tmp_layout, dtype=data.dtype,
        shape=data.shape,
    )
    plan = LayoutOptimizer().plan(
        meta, KernelFeatures.from_registry().get(operator), servers=servers
    )
    pfs.metadata.unlink(f"__plan__{name}")
    client.ingest(name, data, plan.layout if plan.layout is not None else tmp_layout)


def ingest_files(
    pfs,
    scheme: str,
    rng: np.random.Generator,
    policy: str = "scheme",
    names: Sequence[str] = SERVE_FILES,
    raster: Tuple[int, int] = RASTER,
    operator: str = "gaussian",
    servers: Optional[Sequence[str]] = None,
) -> None:
    """Generate and place each bench file under one placement policy.

    ``"scheme"`` places the way the scheme's I/O stack would have
    (round-robin for TS/NAS, the optimizer's improved distribution for
    DAS); ``"replicated"`` uses :func:`replicated_ingest` (survives any
    single crash); ``"partition"`` plans the DAS distribution over the
    ``servers`` subset.  One raster is drawn from ``rng`` per name, in
    order — the exact draw sequence the benches always used.
    """
    if policy not in INGEST_POLICIES:
        raise HarnessError(
            f"unknown ingest policy {policy!r} (expected one of {INGEST_POLICIES})"
        )
    if policy == "partition" and not servers:
        raise HarnessError("ingest policy 'partition' needs a server subset")
    for name in names:
        data = fractal_dem(*raster, rng=rng)
        if policy == "scheme":
            ingest_for_scheme(pfs, scheme, name, data, operator)
        elif policy == "replicated":
            replicated_ingest(pfs, name, data)
        else:
            ingest_partition(pfs, name, data, operator, servers)


def add_bench_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """The flags every bench entry point shares (see the harness runner)."""
    parser.add_argument(
        "--scale-kb",
        type=int,
        default=1024,
        help="simulated KiB per paper GB label (default 1024)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip output-vs-reference verification (faster)",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="also save each report as DIR/<experiment>.json and .csv",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help=(
            "write the machine-readable perf trajectory"
            " (BENCH_serve.json / BENCH_paper.json / BENCH_scenarios.json)"
            " under DIR"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help=(
            "serve/chaos/autoscale/scenario benches: re-run one"
            " representative cell with request tracing on, write"
            " DIR/<cell>.trace.json (Perfetto-loadable) and"
            " <cell>.attribution.json, and check the traced run is"
            " bit-identical to the untraced one"
        ),
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help=(
            "with --trace-dir: trace only every Nth request"
            " (deterministic by request id; default 1 = every request)"
        ),
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help=(
            "serve/chaos/autoscale/fleet benches: re-run one"
            " representative cell with the clock-driven telemetry"
            " sampler + alert engine on, write DIR/<cell>.telemetry.json"
            " (validated by scripts/check_telemetry.py), and check the"
            " sampled run is bit-identical to the unsampled one"
        ),
    )
    return parser


def save_reports(output_dir, reports) -> None:
    """Write each report as ``<experiment>.json``/``.csv`` under a dir."""
    from pathlib import Path

    from .export import save_report

    base = Path(output_dir)
    for report in reports:
        for suffix in (".json", ".csv"):
            save_report(report, base / f"{report.experiment}{suffix}")
