"""serve-bench: throughput-latency curves for the serving layer.

Sweeps offered load over the three schemes with a fixed multi-tenant
mix and reports, per (scheme, load) cell, the achieved throughput and
the arrival-to-finish latency tail.  This is the serving-system analogue
of the paper's Fig. 11 comparison: instead of one operation's makespan,
it asks *how much offered load each scheme sustains before its p99
latency blows through the deadline* — the operating-point view a
storage service actually cares about.

The platform is deliberately throttled (narrow NIC, slow disks,
expensive kernels) so a handful of requests per second is real load on
an 8-node cluster; the *ratios* between the schemes' costs — NAS pays
inter-server halo traffic and request-serving CPU on round-robin data,
warm DAS finds its halo local — are the same forces as in the one-shot
experiments, now compounding under queueing.

Every cell is bit-identically reproducible from the root seed; with
``verify=True`` the bench replays one cell and asserts the summaries
are equal.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..config import PlatformSpec
from ..serve import ServeConfig, ServeSystem, TenantSpec
from ..units import KiB, MiB, us
from ..workloads import fractal_dem
from .experiments import ExperimentReport
from .platform import ExperimentPlatform, build_platform, ingest_for_scheme

#: Schemes swept, in reporting order.
SERVE_SCHEMES = ("TS", "NAS", "DAS")

#: Offered-load multipliers swept (1.0 = BASE_RATE aggregate arrivals).
DEFAULT_LOADS = (0.5, 1.0, 2.0, 4.0)

#: Aggregate request arrival rate at load 1.0 (requests / simulated s).
BASE_RATE = 10.0

#: Arrival-to-finish latency budget (the SLO), simulated seconds.
DEADLINE = 0.5

#: Seconds of offered load per cell at the default scale.
DURATION = 6.0

SERVE_NODES = 8
SERVE_STRIP = 4 * KiB
RASTER = (128, 192)  # 196608-byte float64 raster

#: Throttled platform: a few requests/second saturate 4 storage nodes,
#: so queueing dynamics appear at simulable request counts.  Ratios
#: (NIC below disk, kernels cheap per element vs. moving the element)
#: match the paper's premise.
SERVE_SPEC = PlatformSpec(
    nic_bandwidth=4 * MiB,
    nic_latency=500 * us,
    rpc_overhead=200 * us,
    disk_bandwidth=16 * MiB,
    kernel_cost={
        "default": 16e-6,
        "flow-routing": 24e-6,
        "flow-accumulation": 32e-6,
        "gaussian": 40e-6,
    },
)


def serve_tenants(rate: float = BASE_RATE) -> Tuple[TenantSpec, ...]:
    """The bench's fixed three-tenant mix (weights 3:2:1)."""
    return (
        TenantSpec(
            "alpha",
            rate=rate * 0.5,
            weight=3.0,
            kernels=("gaussian", "flow-routing"),
            files=("dem_a",),
        ),
        TenantSpec(
            "beta",
            rate=rate * 0.3,
            weight=2.0,
            kernels=("gaussian",),
            files=("dem_b",),
        ),
        TenantSpec(
            "gamma",
            rate=rate * 0.2,
            weight=1.0,
            kernels=("flow-accumulation",),
            files=("dem_a", "dem_b"),
        ),
    )


def serve_cell(
    scheme: str,
    load: float,
    duration: float = DURATION,
    deadline: float = DEADLINE,
    platform: Optional[ExperimentPlatform] = None,
) -> Dict[str, object]:
    """One serving run: fresh platform, warm ingest, full summary dict."""
    platform = platform or ExperimentPlatform(spec=SERVE_SPEC, strip_size=SERVE_STRIP)
    cluster, pfs = build_platform(SERVE_NODES, platform)
    rng = np.random.default_rng(platform.seed)
    for name in ("dem_a", "dem_b"):
        ingest_for_scheme(pfs, scheme, name, fractal_dem(*RASTER, rng=rng), "gaussian")
    config = ServeConfig(
        tenants=serve_tenants(),
        scheme=scheme,
        duration=duration,
        deadline=deadline,
        load=load,
        concurrency=8,
        queue_capacity=12,
    )
    return ServeSystem(pfs, config).run()


def _row(summary: Dict[str, object]) -> dict:
    t = summary["tenants"]["_all"]  # type: ignore[index]
    return {
        "scheme": summary["scheme"],
        "load": summary["load"],
        "offered_rps": BASE_RATE * float(summary["load"]),  # type: ignore[arg-type]
        "generated": summary["generated"],
        "rejected": t["rejected"],
        "completed": t["completed"],
        "late": t["late"],
        "expired": t["expired"],
        "failed": t["failed"],
        "throughput_rps": round(t["throughput"], 3),
        "p50_s": round(t["lat_p50"], 4),
        "p95_s": round(t["lat_p95"], 4),
        "p99_s": round(t["lat_p99"], 4),
    }


def _sustained(rows: Sequence[dict], scheme: str, deadline: float) -> float:
    """Highest swept load at which the scheme's p99 meets the deadline
    with nothing shed (0.0 when even the lowest load misses)."""
    ok = [
        r["load"]
        for r in rows
        if r["scheme"] == scheme
        and r["p99_s"] <= deadline
        and r["rejected"] == 0
        and r["expired"] == 0
    ]
    return max(ok) if ok else 0.0


def serve_bench(
    platform=None,
    scale=None,
    verify=True,
    loads: Sequence[float] = DEFAULT_LOADS,
    schemes: Sequence[str] = SERVE_SCHEMES,
) -> ExperimentReport:
    """The serving-layer sweep (registered as ``serve-bench``).

    ``scale`` follows the harness convention of "simulated bytes per
    paper GB" and maps onto the offered-load *duration*: the default
    1 MiB gives :data:`DURATION` seconds per cell; smaller scales
    shorten the run proportionally (floor 1.5 s).
    """
    duration = DURATION
    if scale is not None:
        duration = max(1.5, DURATION * float(scale) / (1024 * KiB))
    rows = []
    summaries: Dict[Tuple[str, float], Dict[str, object]] = {}
    for scheme in schemes:
        for load in loads:
            summary = serve_cell(scheme, load, duration=duration, platform=platform)
            summaries[(scheme, load)] = summary
            rows.append(_row(summary))

    checks = []
    # The overload comparisons need queues time to build: at reduced
    # scale (shorter duration) NAS legitimately survives the top load,
    # so only the full-length sweep asserts them.
    full_length = duration >= DURATION
    if full_length and "DAS" in schemes and "NAS" in schemes:
        das_ok = _sustained(rows, "DAS", DEADLINE)
        nas_ok = _sustained(rows, "NAS", DEADLINE)
        checks.append(
            (
                f"DAS sustains higher offered load than NAS before p99 breaks"
                f" the {DEADLINE:.1f}s deadline (DAS x{das_ok:g} vs NAS x{nas_ok:g})",
                das_ok > nas_ok,
            )
        )
        top = max(loads)
        nas_top = next(r for r in rows if r["scheme"] == "NAS" and r["load"] == top)
        checks.append(
            (
                "overload is visible, not hidden: NAS at the top load is late,"
                " sheds, or violates p99",
                nas_top["late"] + nas_top["expired"] + nas_top["rejected"] > 0
                or nas_top["p99_s"] > DEADLINE,
            )
        )
    if "DAS" in schemes:
        cache_stats = [
            s["decision_cache"] for (sch, _), s in summaries.items() if sch == "DAS"
        ]
        checks.append(
            (
                "decision cache absorbs the repeated Fig. 3 consults"
                " (hits > misses in every DAS cell)",
                all(c["hits"] > c["misses"] for c in cache_stats),  # type: ignore[index]
            )
        )
    checks.append(
        (
            "conservation: every admitted request settled exactly once"
            " in every cell",
            all(s["admitted"] == s["settled"] for s in summaries.values()),
        )
    )
    if verify and rows:
        scheme0, load0 = schemes[0], loads[0]
        replay = serve_cell(scheme0, load0, duration=duration, platform=platform)
        checks.append(
            (
                f"bit-identical replay: {scheme0} at load x{load0:g} reproduces"
                " the same summary from the same seed",
                replay == summaries[(scheme0, load0)],
            )
        )

    return ExperimentReport(
        experiment="serve-bench",
        title="Serving layer: offered load vs latency tail, TS/NAS/DAS",
        rows=rows,
        checks=checks,
        notes=(
            f"{SERVE_NODES} nodes (half storage), {RASTER[0]}x{RASTER[1]} rasters,"
            f" 3 tenants (weights 3:2:1) offering {BASE_RATE:g} req/s at load 1.0"
            f" for {duration:g}s; deadline {DEADLINE:g}s, throttled serving platform."
            + (
                ""
                if full_length
                else " Reduced scale: overload comparisons skipped"
                " (queues need the full duration to build)."
            )
        ),
    )
