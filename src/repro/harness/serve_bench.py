"""serve-bench: throughput-latency curves for the serving layer.

Sweeps offered load over the three schemes with a fixed multi-tenant
mix and reports, per (scheme, load) cell, the achieved throughput and
the arrival-to-finish latency tail.  This is the serving-system analogue
of the paper's Fig. 11 comparison: instead of one operation's makespan,
it asks *how much offered load each scheme sustains before its p99
latency blows through the deadline* — the operating-point view a
storage service actually cares about.

The platform is deliberately throttled (narrow NIC, slow disks,
expensive kernels) so a handful of requests per second is real load on
an 8-node cluster; the *ratios* between the schemes' costs — NAS pays
inter-server halo traffic and request-serving CPU on round-robin data,
warm DAS finds its halo local — are the same forces as in the one-shot
experiments, now compounding under queueing.

Batching cells: the DAS sweep is doubled with ``batch_max > 1`` cells
(same workload, same seed) plus extended loads, so the report shows the
amortisation directly — fewer request-header bytes and fewer halo bytes
per completed request at equal offered load, and a strictly higher
sustained operating point — while the result digests prove batch-on
outputs are bit-identical to batch-off.

Every cell is bit-identically reproducible from the root seed; with
``verify=True`` the bench replays one cell and asserts the summaries
are equal.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..serve import ServeConfig, ServeSystem, TenantSpec
from .common import (
    RASTER,
    SERVE_NODES,
    SERVE_SPEC,
    SERVE_STRIP,
    build_serve_platform,
    ingest_files,
    scaled_duration,
    serve_platform,
)
from .experiments import ExperimentReport
from .platform import ExperimentPlatform

#: Schemes swept, in reporting order.
SERVE_SCHEMES = ("TS", "NAS", "DAS")

#: Offered-load multipliers swept (1.0 = BASE_RATE aggregate arrivals).
DEFAULT_LOADS = (0.5, 1.0, 2.0, 4.0)

#: Batch window of the batch-on DAS cells (requests per fan-out).
DEFAULT_BATCH_MAX = 8

#: Extra loads swept for the DAS batch-on/off comparison: past the
#: unbatched breaking point, so the raised operating point is visible.
BATCH_EXTRA_LOADS = (8.0,)

#: Aggregate request arrival rate at load 1.0 (requests / simulated s).
BASE_RATE = 10.0

#: Arrival-to-finish latency budget (the SLO), simulated seconds.
DEADLINE = 0.5

#: Seconds of offered load per cell at the default scale.
DURATION = 6.0


def serve_tenants(rate: float = BASE_RATE) -> Tuple[TenantSpec, ...]:
    """The bench's fixed three-tenant mix (weights 3:2:1)."""
    return (
        TenantSpec(
            "alpha",
            rate=rate * 0.5,
            weight=3.0,
            kernels=("gaussian", "flow-routing"),
            files=("dem_a",),
        ),
        TenantSpec(
            "beta",
            rate=rate * 0.3,
            weight=2.0,
            kernels=("gaussian",),
            files=("dem_b",),
        ),
        TenantSpec(
            "gamma",
            rate=rate * 0.2,
            weight=1.0,
            kernels=("flow-accumulation",),
            files=("dem_a", "dem_b"),
        ),
    )


def serve_cell(
    scheme: str,
    load: float,
    duration: float = DURATION,
    deadline: float = DEADLINE,
    platform: Optional[ExperimentPlatform] = None,
    batch_max: int = 1,
    tracer=None,
    telemetry=None,
) -> Dict[str, object]:
    """One serving run: fresh platform, warm ingest, full summary dict."""
    summary, _ = serve_cell_system(
        scheme,
        load,
        duration=duration,
        deadline=deadline,
        platform=platform,
        batch_max=batch_max,
        tracer=tracer,
        telemetry=telemetry,
    )
    return summary


def serve_cell_system(
    scheme: str,
    load: float,
    duration: float = DURATION,
    deadline: float = DEADLINE,
    platform: Optional[ExperimentPlatform] = None,
    batch_max: int = 1,
    tracer=None,
    telemetry=None,
) -> Tuple[Dict[str, object], ServeSystem]:
    """Like :func:`serve_cell` but also returns the system (telemetry
    replays read the sampler off it for artifact export)."""
    platform = serve_platform(platform)
    cluster, pfs = build_serve_platform(platform)
    rng = np.random.default_rng(platform.seed)
    ingest_files(pfs, scheme, rng, policy="scheme")
    config = ServeConfig(
        tenants=serve_tenants(),
        scheme=scheme,
        duration=duration,
        deadline=deadline,
        load=load,
        concurrency=8,
        queue_capacity=12,
        batch_max=batch_max,
        tracer=tracer,
        telemetry=telemetry,
    )
    system = ServeSystem(pfs, config)
    return system.run(), system


def _row(summary: Dict[str, object]) -> dict:
    t = summary["tenants"]["_all"]  # type: ignore[index]
    batch = summary["batch"]  # type: ignore[index]
    wire = summary["bytes"]  # type: ignore[index]
    return {
        "scheme": summary["scheme"],
        "load": summary["load"],
        "batch": batch["max"],
        "offered_rps": BASE_RATE * float(summary["load"]),  # type: ignore[arg-type]
        "generated": summary["generated"],
        "rejected": t["rejected"],
        "completed": t["completed"],
        "late": t["late"],
        "expired": t["expired"],
        "failed": t["failed"],
        "throughput_rps": round(t["throughput"], 3),
        "p50_s": round(t["lat_p50"], 4),
        "p95_s": round(t["lat_p95"], 4),
        "p99_s": round(t["lat_p99"], 4),
        "hdr_bytes": wire["request_header"],
        "halo_bytes": wire["halo_local"] + wire["halo_remote"],
        "batch_hit_rate": round(batch["hit_rate"], 4),
    }


def _sustained(
    rows: Sequence[dict], scheme: str, deadline: float, batch: int = 1
) -> float:
    """Highest swept load at which the scheme's p99 meets the deadline
    with nothing shed (0.0 when even the lowest load misses)."""
    ok = [
        r["load"]
        for r in rows
        if r["scheme"] == scheme
        and r["batch"] == batch
        and r["p99_s"] <= deadline
        and r["rejected"] == 0
        and r["expired"] == 0
    ]
    return max(ok) if ok else 0.0


def serve_bench(
    platform=None,
    scale=None,
    verify=True,
    loads: Sequence[float] = DEFAULT_LOADS,
    schemes: Sequence[str] = SERVE_SCHEMES,
    batch_max: int = DEFAULT_BATCH_MAX,
    trace_dir=None,
    trace_sample: int = 1,
    telemetry_dir=None,
) -> ExperimentReport:
    """The serving-layer sweep (registered as ``serve-bench``).

    ``scale`` follows the harness convention of "simulated bytes per
    paper GB" and maps onto the offered-load *duration*: the default
    1 MiB gives :data:`DURATION` seconds per cell; smaller scales
    shorten the run proportionally (floor 1.5 s).  With
    ``batch_max > 1`` (the default) and DAS in ``schemes``, the DAS
    loads are re-swept with batching on — plus :data:`BATCH_EXTRA_LOADS`
    both ways — for the amortisation comparison; ``batch_max=1``
    reproduces the plain three-scheme sweep.
    """
    duration = scaled_duration(scale, DURATION, 1.5)
    batching = batch_max > 1 and "DAS" in schemes
    # Cells are (scheme, load, batch_max) triples.
    cells: list = [(scheme, load, 1) for scheme in schemes for load in loads]
    das_loads: Tuple[float, ...] = tuple(loads)
    if batching:
        das_loads += tuple(l for l in BATCH_EXTRA_LOADS if l not in loads)
        cells += [("DAS", l, 1) for l in das_loads if l not in loads]
        cells += [("DAS", l, batch_max) for l in das_loads]
    rows = []
    summaries: Dict[Tuple[str, float, int], Dict[str, object]] = {}
    for scheme, load, batch in cells:
        summary = serve_cell(
            scheme, load, duration=duration, platform=platform, batch_max=batch
        )
        summaries[(scheme, load, batch)] = summary
        rows.append(_row(summary))

    checks = []
    # The overload comparisons need queues time to build: at reduced
    # scale (shorter duration) NAS legitimately survives the top load,
    # so only the full-length sweep asserts them.
    full_length = duration >= DURATION
    if full_length and "DAS" in schemes and "NAS" in schemes:
        das_ok = _sustained(rows, "DAS", DEADLINE)
        nas_ok = _sustained(rows, "NAS", DEADLINE)
        checks.append(
            (
                f"DAS sustains higher offered load than NAS before p99 breaks"
                f" the {DEADLINE:.1f}s deadline (DAS x{das_ok:g} vs NAS x{nas_ok:g})",
                das_ok > nas_ok,
            )
        )
        top = max(loads)
        nas_top = next(r for r in rows if r["scheme"] == "NAS" and r["load"] == top)
        checks.append(
            (
                "overload is visible, not hidden: NAS at the top load is late,"
                " sheds, or violates p99",
                nas_top["late"] + nas_top["expired"] + nas_top["rejected"] > 0
                or nas_top["p99_s"] > DEADLINE,
            )
        )
    if "DAS" in schemes:
        cache_stats = [
            s["decision_cache"] for (sch, _, _), s in summaries.items() if sch == "DAS"
        ]
        checks.append(
            (
                "decision cache absorbs the repeated Fig. 3 consults"
                " (hits > misses in every DAS cell)",
                all(c["hits"] > c["misses"] for c in cache_stats),  # type: ignore[index]
            )
        )
    if batching:
        top = max(das_loads)
        on = summaries[("DAS", top, batch_max)]
        off = summaries[("DAS", top, 1)]
        hdr = lambda s: s["bytes"]["request_header"]  # type: ignore[index]

        def halo_per_completed(s):
            done = max(1, s["tenants"]["_all"]["completed"])  # type: ignore[index]
            return (s["bytes"]["halo_local"] + s["bytes"]["halo_remote"]) / done  # type: ignore[index]

        checks.append(
            (
                f"batching amortises RPC headers: fewer request-header bytes"
                f" at load x{top:g} ({hdr(on)} vs {hdr(off)})",
                hdr(on) < hdr(off),
            )
        )
        checks.append(
            (
                "batching amortises halo assembly: fewer halo bytes per"
                f" completed request at load x{top:g}"
                f" ({halo_per_completed(on):.0f} vs {halo_per_completed(off):.0f})",
                halo_per_completed(on) < halo_per_completed(off),
            )
        )
        hot = [
            s["batch"]["hit_rate"]  # type: ignore[index]
            for (sch, l, b), s in summaries.items()
            if b > 1 and l >= 2.0
        ]
        checks.append(
            (
                "batching engages under load: duplicate-key dispatches share"
                " fan-outs (hit rate > 0 at loads >= x2)",
                bool(hot) and any(rate > 0 for rate in hot),
            )
        )
        low = min(das_loads)
        checks.append(
            (
                f"batch on/off bit-identical outputs at load x{low:g}"
                " (per-request result CRCs agree)",
                summaries[("DAS", low, batch_max)]["result_digest"]
                == summaries[("DAS", low, 1)]["result_digest"],
            )
        )
        if full_length:
            sus_on = _sustained(rows, "DAS", DEADLINE, batch=batch_max)
            sus_off = _sustained(rows, "DAS", DEADLINE, batch=1)
            checks.append(
                (
                    "batched DAS sustains a strictly higher load before p99"
                    f" breaks the deadline (x{sus_on:g} vs x{sus_off:g})",
                    sus_on > sus_off,
                )
            )
    checks.append(
        (
            "conservation: every admitted request settled exactly once"
            " in every cell",
            all(s["admitted"] == s["settled"] for s in summaries.values()),
        )
    )
    if verify and rows:
        scheme0, load0 = schemes[0], loads[0]
        replay = serve_cell(scheme0, load0, duration=duration, platform=platform)
        checks.append(
            (
                f"bit-identical replay: {scheme0} at load x{load0:g} reproduces"
                " the same summary from the same seed",
                replay == summaries[(scheme0, load0, 1)],
            )
        )

    if trace_dir is not None and rows:
        from .tracing import traced_replay

        t_scheme = "DAS" if "DAS" in schemes else schemes[0]
        t_load = 1.0 if 1.0 in loads else loads[0]
        trace_checks, _ = traced_replay(
            f"serve_{t_scheme}_x{t_load:g}",
            lambda tracer: serve_cell(
                t_scheme, t_load, duration=duration, platform=platform,
                tracer=tracer,
            ),
            summaries[(t_scheme, t_load, 1)],
            trace_dir,
            meta={
                "bench": "serve-bench",
                "scheme": t_scheme,
                "load": t_load,
                "duration": duration,
            },
            sample=1.0 / max(1, int(trace_sample)),
        )
        checks += trace_checks

    aux_checks = []
    if telemetry_dir is not None and rows:
        from .telemetry import telemetry_replay

        t_scheme = "DAS" if "DAS" in schemes else schemes[0]
        t_load = 1.0 if 1.0 in loads else loads[0]

        def _telemetered(config):
            summary, system = serve_cell_system(
                t_scheme, t_load, duration=duration, platform=platform,
                telemetry=config,
            )
            return summary, system.telemetry

        telemetry_checks, _ = telemetry_replay(
            f"serve_{t_scheme}_x{t_load:g}",
            _telemetered,
            summaries[(t_scheme, t_load, 1)],
            telemetry_dir,
            meta={
                "bench": "serve-bench",
                "scheme": t_scheme,
                "load": t_load,
                "duration": duration,
            },
        )
        aux_checks += telemetry_checks

    return ExperimentReport(
        experiment="serve-bench",
        title="Serving layer: offered load vs latency tail, TS/NAS/DAS",
        rows=rows,
        checks=checks,
        aux_checks=aux_checks,
        notes=(
            f"{SERVE_NODES} nodes (half storage), {RASTER[0]}x{RASTER[1]} rasters,"
            f" 3 tenants (weights 3:2:1) offering {BASE_RATE:g} req/s at load 1.0"
            f" for {duration:g}s; deadline {DEADLINE:g}s, throttled serving platform."
            + (
                f" DAS re-swept with batch_max={batch_max}"
                " (same-(file, kernel) requests share one fan-out)."
                if batching
                else ""
            )
            + (
                ""
                if full_length
                else " Reduced scale: overload comparisons skipped"
                " (queues need the full duration to build)."
            )
        ),
    )
