"""One regenerator per table/figure of the paper's evaluation section.

Each experiment function returns an :class:`ExperimentReport` holding
the measured rows, the rendered text, and the *shape checks*: the
paper's qualitative claims evaluated against this run's numbers.  The
benchmark suite asserts those checks; EXPERIMENTS.md records them.

Paper experiment map:

* Table I  — kernel descriptions                    -> :func:`table1`
* Fig. 10  — NAS vs TS time, 3 kernels, 24–60 GB    -> :func:`fig10`
* Fig. 11  — NAS/DAS/TS time at 24 GB               -> :func:`fig11`
* Fig. 12  — time vs data size, all schemes         -> :func:`fig12`
* Fig. 13  — time vs node count, DAS & TS, 60 GB    -> :func:`fig13`
* Fig. 14  — normalised sustained bandwidth         -> :func:`fig14`
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import UnknownExperimentError
from ..kernels import default_registry
from ..metrics.report import format_checks, format_table
from ..workloads import PAPER_DATA_SIZES_GB, PAPER_NODE_COUNTS
from .platform import ExperimentPlatform
from .runs import RunRecord, run_label_cell

#: The paper's three evaluation kernels (Table I).
PAPER_KERNELS = ("flow-routing", "flow-accumulation", "gaussian")

#: Node count used by Figs. 10–12 and 14 (12 storage + 12 compute).
DEFAULT_NODES = 24


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    experiment: str
    title: str
    rows: List[dict]
    checks: List[Tuple[str, bool]] = field(default_factory=list)
    notes: str = ""
    #: Checks from diagnostic replays (e.g. the telemetry sampler's
    #: non-perturbation proof).  They gate the run like ``checks`` do,
    #: but stay out of the recorded ``BENCH_*.json`` trajectory: the
    #: payload must be bit-identical whether or not a diagnostic flag
    #: was passed.
    aux_checks: List[Tuple[str, bool]] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(ok for _, ok in self.checks) and all(
            ok for _, ok in self.aux_checks
        )

    def to_text(self) -> str:
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.notes:
            parts.append(self.notes)
        parts.append(format_table(self.rows))
        if self.checks or self.aux_checks:
            parts.append(format_checks(self.checks + self.aux_checks))
        return "\n\n".join(parts)


def _grid(
    schemes: Sequence[str],
    kernels: Sequence[str],
    sizes: Sequence[float],
    nodes: Sequence[int],
    platform: Optional[ExperimentPlatform],
    scale: Optional[int],
    verify: bool,
) -> Dict[tuple, RunRecord]:
    out: Dict[tuple, RunRecord] = {}
    for scheme in schemes:
        for kernel in kernels:
            for size in sizes:
                for n in nodes:
                    out[(scheme, kernel, size, n)] = run_label_cell(
                        scheme, kernel, size, n, platform, scale, verify
                    )
    return out


def _time(cells, scheme, kernel, size, nodes) -> float:
    return cells[(scheme, kernel, size, nodes)].sim_seconds


# ---------------------------------------------------------------------------
def table1(platform=None, scale=None, verify=True) -> ExperimentReport:
    """Table I: description of the data-analysis kernels."""
    rows = []
    for name in PAPER_KERNELS:
        kernel = default_registry.get(name)
        rows.append(
            {
                "name": kernel.name,
                "domain": kernel.domain,
                "description": kernel.description.strip(),
            }
        )
    checks = [
        (
            "all three Table I kernels are implemented and registered",
            all(k in default_registry for k in PAPER_KERNELS),
        ),
        (
            "every kernel carries an 8-neighbour dependence record",
            all(
                len(default_registry.get(k).pattern().terms) == 8
                for k in PAPER_KERNELS
            ),
        ),
    ]
    return ExperimentReport(
        experiment="table1",
        title="Description of data analysis kernels",
        rows=rows,
        checks=checks,
    )


# ---------------------------------------------------------------------------
def fig10(
    platform=None,
    scale=None,
    verify=True,
    sizes: Sequence[float] = PAPER_DATA_SIZES_GB,
    nodes: int = DEFAULT_NODES,
) -> ExperimentReport:
    """Fig. 10: execution time of NAS vs TS — the data-dependence hit."""
    cells = _grid(("NAS", "TS"), PAPER_KERNELS, sizes, (nodes,), platform, scale, verify)
    rows = [rec.row for rec in cells.values()]
    checks = []
    for kernel in PAPER_KERNELS:
        slower_everywhere = all(
            _time(cells, "NAS", kernel, s, nodes) > _time(cells, "TS", kernel, s, nodes)
            for s in sizes
        )
        checks.append(
            (f"{kernel}: NAS slower than TS at every data size", slower_everywhere)
        )
    worst = max(
        _time(cells, "NAS", k, s, nodes) / _time(cells, "TS", k, s, nodes)
        for k in PAPER_KERNELS
        for s in sizes
    )
    checks.append(
        ("dependence makes NAS substantially (>1.3x) slower than TS", worst > 1.3)
    )
    return ExperimentReport(
        experiment="fig10",
        title="Comparison of execution time for NAS and TS schemes",
        rows=rows,
        checks=checks,
        notes=(
            f"{nodes} nodes (half storage); data sizes are paper GB labels"
            " mapped onto scaled simulated rasters."
        ),
    )


# ---------------------------------------------------------------------------
def fig11(
    platform=None,
    scale=None,
    verify=True,
    size_gb: float = 24,
    nodes: int = DEFAULT_NODES,
) -> ExperimentReport:
    """Fig. 11: all three schemes at 24 GB."""
    cells = _grid(
        ("NAS", "DAS", "TS"), PAPER_KERNELS, (size_gb,), (nodes,), platform, scale, verify
    )
    rows = [rec.row for rec in cells.values()]
    checks = []
    for kernel in PAPER_KERNELS:
        das = _time(cells, "DAS", kernel, size_gb, nodes)
        ts = _time(cells, "TS", kernel, size_gb, nodes)
        nas = _time(cells, "NAS", kernel, size_gb, nodes)
        checks.append((f"{kernel}: DAS fastest of the three", das < ts and das < nas))
        checks.append(
            (f"{kernel}: DAS >=30% improvement over TS (paper: 'over 30%')",
             das <= 0.75 * ts)
        )
        checks.append(
            (f"{kernel}: DAS >=50% improvement over NAS (paper: '60%')",
             das <= 0.5 * nas)
        )
    return ExperimentReport(
        experiment="fig11",
        title="Comparison of execution time for NAS, DAS and TS schemes",
        rows=rows,
        checks=checks,
        notes=f"{size_gb} GB label, {nodes} nodes (half storage).",
    )


# ---------------------------------------------------------------------------
def fig12(
    platform=None,
    scale=None,
    verify=True,
    sizes: Sequence[float] = PAPER_DATA_SIZES_GB,
    nodes: int = DEFAULT_NODES,
) -> ExperimentReport:
    """Fig. 12: scalability with data size, all three schemes."""
    cells = _grid(
        ("NAS", "DAS", "TS"), PAPER_KERNELS, sizes, (nodes,), platform, scale, verify
    )
    rows = [rec.row for rec in cells.values()]

    def slope(scheme: str, kernel: str) -> float:
        """Mean absolute time increase per +12 GB step.

        The paper reports DAS's *relative* growth (15% vs 30%) — a gap
        driven by fixed overheads at testbed scale.  In a simulation
        whose costs are strictly linear in bytes, relative growth
        converges to the same value for every scheme, so the surviving
        shape claim is the absolute one: DAS's time-vs-data slope is
        the smallest because it moves the fewest bytes per added GB.
        """
        times = [_time(cells, scheme, kernel, s, nodes) for s in sizes]
        steps = [b - a for a, b in zip(times, times[1:])]
        return sum(steps) / len(steps) if steps else 0.0

    checks = []
    for kernel in PAPER_KERNELS:
        s_das = slope("DAS", kernel)
        s_nas = slope("NAS", kernel)
        s_ts = slope("TS", kernel)
        checks.append(
            (
                f"{kernel}: DAS has the lowest time increase per +12 GB"
                f" (DAS {s_das * 1e3:.2f} ms vs NAS {s_nas * 1e3:.2f},"
                f" TS {s_ts * 1e3:.2f})",
                s_das <= s_nas and s_das <= s_ts,
            )
        )
        checks.append(
            (f"{kernel}: DAS fastest at the largest size",
             _time(cells, "DAS", kernel, sizes[-1], nodes)
             < min(_time(cells, "NAS", kernel, sizes[-1], nodes),
                   _time(cells, "TS", kernel, sizes[-1], nodes)))
        )
    return ExperimentReport(
        experiment="fig12",
        title="Execution time of NAS, TS and DAS as data size increases",
        rows=rows,
        checks=checks,
        notes=f"{nodes} nodes; sizes {list(sizes)} GB labels.",
    )


# ---------------------------------------------------------------------------
def fig13(
    platform=None,
    scale=None,
    verify=True,
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    size_gb: float = 60,
) -> ExperimentReport:
    """Fig. 13: scalability with node count, DAS and TS at 60 GB."""
    cells = _grid(
        ("DAS", "TS"), PAPER_KERNELS, (size_gb,), tuple(node_counts), platform, scale,
        verify,
    )
    rows = [rec.row for rec in cells.values()]
    checks = []
    for kernel in PAPER_KERNELS:
        for scheme in ("DAS", "TS"):
            times = [_time(cells, scheme, kernel, size_gb, n) for n in node_counts]
            monotone = all(b <= a * 1.02 for a, b in zip(times, times[1:]))
            checks.append(
                (f"{kernel}: {scheme} time non-increasing as nodes grow", monotone)
            )
        das_faster = all(
            _time(cells, "DAS", kernel, size_gb, n)
            < _time(cells, "TS", kernel, size_gb, n)
            for n in node_counts
        )
        checks.append((f"{kernel}: DAS below TS at every node count", das_faster))
    return ExperimentReport(
        experiment="fig13",
        title="Execution time of DAS and TS as the number of nodes increases",
        rows=rows,
        checks=checks,
        notes=f"data fixed at {size_gb} GB label; nodes {list(node_counts)}.",
    )


# ---------------------------------------------------------------------------
def fig14(
    platform=None,
    scale=None,
    verify=True,
    sizes: Sequence[float] = (24, 36, 48),
    nodes: int = DEFAULT_NODES,
) -> ExperimentReport:
    """Fig. 14: normalised sustained bandwidth (flow-routing)."""
    cells = _grid(
        ("NAS", "DAS", "TS"), ("flow-routing",), sizes, (nodes,), platform, scale, verify
    )
    rows = []
    norm: Dict[tuple, float] = {}
    for size in sizes:
        ts_bw = cells[("TS", "flow-routing", size, nodes)].bandwidth
        for scheme in ("NAS", "DAS", "TS"):
            rec = cells[(scheme, "flow-routing", size, nodes)]
            normalized = rec.bandwidth / ts_bw if ts_bw else float("nan")
            norm[(scheme, size)] = normalized
            rows.append(
                {
                    "scheme": scheme,
                    "data_gb": size,
                    "bandwidth_MBps": rec.bandwidth / 1e6,
                    "normalized_vs_TS": normalized,
                }
            )
    checks = [
        (
            "DAS sustained bandwidth ~2x TS (paper: 'nearly one fold')",
            all(norm[("DAS", s)] >= 1.3 for s in sizes),
        ),
        (
            "NAS sustained bandwidth below TS at every size",
            all(norm[("NAS", s)] < 1.0 for s in sizes),
        ),
        (
            "DAS highest bandwidth at every size",
            all(
                norm[("DAS", s)] > max(norm[("NAS", s)], norm[("TS", s)])
                for s in sizes
            ),
        ),
    ]
    return ExperimentReport(
        experiment="fig14",
        title="Normalized sustained bandwidth improvement (flow-routing)",
        rows=rows,
        checks=checks,
        notes=f"{nodes} nodes; bandwidth = dataset bytes / makespan, TS = 1.0.",
    )


# ---------------------------------------------------------------------------
def ext_oversub(
    platform=None,
    scale=None,
    verify=True,
    size_gb: float = 24,
    nodes: int = 16,
    factors: Sequence[int] = (1, 4, 16),
) -> ExperimentReport:
    """Extension (not in the paper): oversubscribed-fabric sweep.

    The bisection between the compute and storage partitions is
    throttled by the given oversubscription factors (1 = non-blocking).
    The paper's premise is that this pipe is the scarce resource; the
    sweep makes the mechanism explicit: TS's makespan tracks the
    bisection while a pre-distributed DAS offload, whose traffic stays
    inside the storage partition, does not.
    """
    from ..config import PlatformSpec
    from .platform import ExperimentPlatform

    base_platform = platform or ExperimentPlatform()
    n_storage = max(1, round(nodes * base_platform.storage_fraction))
    rows = []
    times: Dict[tuple, float] = {}
    for factor in factors:
        spec: PlatformSpec = base_platform.spec
        if factor > 1:
            spec = spec.with_overrides(
                bisection_bandwidth=n_storage * spec.nic_bandwidth / factor
            )
        oversub_platform = ExperimentPlatform(
            spec=spec,
            strip_size=base_platform.strip_size,
            storage_fraction=base_platform.storage_fraction,
            seed=base_platform.seed,
        )
        for scheme in ("TS", "DAS"):
            rec = run_label_cell(
                scheme, "gaussian", size_gb, nodes, oversub_platform, scale, verify
            )
            times[(scheme, factor)] = rec.sim_seconds
            row = rec.row
            row["oversub"] = f"{factor}:1"
            rows.append(row)

    base = factors[0]
    worst = factors[-1]
    checks = [
        (
            "TS degrades under oversubscription (>1.5x at the worst factor)",
            times[("TS", worst)] > 1.5 * times[("TS", base)],
        ),
        (
            "DAS within 10% across all factors (traffic stays in-partition)",
            max(times[("DAS", f)] for f in factors)
            <= 1.1 * min(times[("DAS", f)] for f in factors),
        ),
        (
            "DAS fastest at every oversubscription factor",
            all(times[("DAS", f)] < times[("TS", f)] for f in factors),
        ),
    ]
    return ExperimentReport(
        experiment="ext-oversub",
        title="Extension: oversubscribed compute<->storage bisection",
        rows=rows,
        checks=checks,
        notes=(
            f"{nodes} nodes, {size_gb} GB label; bisection ="
            f" storage-partition injection bandwidth / factor."
        ),
    )


from .autoscale_bench import autoscale_bench  # noqa: E402  (needs ExperimentReport above)
from .chaos_bench import chaos_bench  # noqa: E402  (needs ExperimentReport above)
from .engine_bench import engine_bench  # noqa: E402  (needs ExperimentReport above)
from .fleet_bench import fleet_bench  # noqa: E402  (needs ExperimentReport above)
from .serve_bench import serve_bench  # noqa: E402  (needs ExperimentReport above)


def _scenario_bench(**kwargs) -> ExperimentReport:
    # Imported lazily: scenario_bench is also a runnable module
    # (``python -m repro.harness.scenario_bench``), and importing it
    # here would shadow that execution with a stale sys.modules entry.
    from .scenario_bench import scenario_bench

    return scenario_bench(**kwargs)

#: Experiment id -> regenerator.
EXPERIMENTS: Dict[str, Callable[..., ExperimentReport]] = {
    "table1": table1,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "ext-oversub": ext_oversub,
    "serve-bench": serve_bench,
    "engine-bench": engine_bench,
    "chaos-bench": chaos_bench,
    "autoscale-bench": autoscale_bench,
    "scenario-bench": _scenario_bench,
    "fleet-bench": fleet_bench,
}


def run_experiment(name: str, **kwargs) -> ExperimentReport:
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)
