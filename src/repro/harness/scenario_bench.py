"""scenario-bench: run declarative scenarios and enforce their gates.

Each cell is one :class:`~repro.scenarios.ScenarioSpec` — a whole
serving experiment (topology, tenant mix, ramps, chaos, autoscaling)
declared as a JSON document with its own ``checks`` section.  The
bench materializes every requested scenario, runs it, evaluates the
declared checks, and proves bit-identical replay per scenario, so the
named library under ``src/repro/scenarios/library/`` doubles as an
executable regression suite over the serving stack::

    python -m repro.harness.scenario_bench --library --bench-dir benchmarks/
    python -m repro.harness.scenario_bench --scenario black-friday
    python -m repro.harness.scenario_bench --scenario my_spec.json

Scenarios pin their own durations (a few simulated seconds each) so
their calibrated check thresholds hold at every harness ``--scale-kb``;
the scale flag is accepted for CLI uniformity but does not stretch
scenario runs.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..scenarios import (
    ScenarioSpec,
    evaluate_checks,
    library_names,
    load_scenario,
    reference_spec,
    run_scenario,
)
from .experiments import ExperimentReport

#: Wall-clock cheap library members CI smokes on every push.
SMOKE_SCENARIOS = ("rolling-upgrade", "region-loss")


def _resolve(scenarios: Optional[Sequence[object]]) -> List[ScenarioSpec]:
    """Names, paths, dicts or ready specs -> validated specs, in order."""
    if scenarios is None:
        scenarios = library_names()
    return [
        entry if isinstance(entry, ScenarioSpec) else load_scenario(entry)
        for entry in scenarios
    ]


def _scenario_row(spec: ScenarioSpec, summary: dict) -> dict:
    t = summary["tenants"]["_all"]
    row = {
        "scenario": spec.name,
        "scheme": spec.topology.scheme,
        "tenants": len(spec.tenants),
        "generated": summary["generated"],
        "admitted": summary["admitted"],
        "completed": t["completed"],
        "late": t["late"],
        "expired": t["expired"],
        "rejected": t["rejected"],
        "failed": t["failed"],
        "availability": round(t["availability"], 4),
        "p99_s": round(t["lat_p99"], 4) if t["lat_p99"] is not None else None,
        "checks_declared": len(spec.checks),
    }
    if "autoscale" in summary:
        row["final_partition"] = summary["autoscale"]["active"]
    if "faults" in summary:
        row["failover_reads"] = summary["faults"]["failover_reads"]
    return row


def scenario_bench(
    platform=None,
    scale=None,
    verify: bool = True,
    scenarios: Optional[Sequence[object]] = None,
    trace_dir=None,
    trace_sample: int = 1,
) -> ExperimentReport:
    """Run scenarios and their gates (registered as ``scenario-bench``).

    ``scenarios`` selects what runs: library names, spec-file paths,
    raw dicts, or loaded specs; ``None`` runs the whole library.
    ``scale`` is ignored — every scenario declares its own duration so
    its calibrated thresholds stay meaningful (noted in the report).
    ``verify`` re-runs each scenario and asserts the summary (resizes,
    fault tallies and digests included) is bit-identical.
    """
    specs = _resolve(scenarios)

    rows = []
    checks: List[Tuple[str, bool]] = []
    results: Dict[str, Tuple[dict, Dict[int, int]]] = {}
    for spec in specs:
        summary, digests = run_scenario(spec, platform=platform)
        results[spec.name] = (summary, digests)
        rows.append(_scenario_row(spec, summary))
        reference = None
        if any(c.check == "crc_identity" for c in spec.checks):
            # The fault-free twin every surviving result must match.
            reference = run_scenario(reference_spec(spec), platform=platform)
        for label, ok in evaluate_checks(
            spec.checks, summary, digests=digests, reference=reference
        ):
            checks.append((f"{spec.name}: {label}", ok))
        if verify:
            replay_summary, replay_digests = run_scenario(spec, platform=platform)
            checks.append(
                (
                    f"{spec.name}: bit-identical replay (summary and"
                    " per-request digests reproduce from the spec alone)",
                    replay_summary == summary and replay_digests == digests,
                )
            )

    if trace_dir is not None:
        from .tracing import traced_replay

        first = specs[0]
        trace_checks, _ = traced_replay(
            f"scenario-{first.name}",
            lambda tracer: run_scenario(first, platform=platform, tracer=tracer)[0],
            results[first.name][0],
            trace_dir,
            meta={"bench": "scenario-bench", "scenario": first.name},
            sample=1.0 / max(1, int(trace_sample)),
        )
        checks += trace_checks

    return ExperimentReport(
        experiment="scenario-bench",
        title="Declarative scenarios: library runs vs their declared gates",
        rows=rows,
        checks=checks,
        notes=(
            f"{len(specs)} scenario(s); every check above is declared in"
            " the scenario document itself (see docs/SCENARIOS.md)."
            " Scenarios pin their own durations, so --scale-kb does not"
            " stretch them."
        ),
    )


def build_parser():
    """The standalone CLI (also introspected by scripts/check_docs.py)."""
    import argparse

    from .common import add_bench_arguments

    parser = argparse.ArgumentParser(
        prog="scenario-bench",
        description="Run declarative scenarios and enforce their pass/fail gates.",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--library",
        action="store_true",
        help="run every named scenario shipped under repro/scenarios/library/",
    )
    group.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME_OR_PATH",
        help="library scenario name or spec-file path; repeatable",
    )
    add_bench_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.harness.scenario_bench``)."""
    args = build_parser().parse_args(argv)

    from .common import bench_timer

    with bench_timer() as timing:
        report = scenario_bench(
            scale=args.scale_kb * 1024,
            verify=not args.no_verify,
            scenarios=None if args.library else args.scenario,
            trace_dir=args.trace_dir,
            trace_sample=args.trace_sample,
        )
    print(report.to_text())
    if args.output_dir:
        from .common import save_reports

        save_reports(args.output_dir, [report])
    if args.bench_dir:
        from .trajectory import write_trajectory

        for path in write_trajectory(args.bench_dir, [(report, timing)], args.scale_kb):
            print(f"wrote {path}", file=sys.stderr)
    return 0 if report.all_checks_pass else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
