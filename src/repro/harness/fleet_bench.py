"""fleet-bench: multi-cell federation behind the global router tier.

Exercises :mod:`repro.fleet` end to end and measures what the fleet
layer claims to provide:

* **Isolation** — three sticky cells, chaos (disk slowdown + crash +
  recovery) injected into cell-0 only, long-tail background streams on
  every cell.  The blast radius stays contained: every *healthy* cell
  keeps 100% availability and a p99 under the serve-bench SLO while the
  stricken cell rides out its faults on halo-replica failover.
* **Spillover** — two cells, the hot cell's tenants jammed by the same
  chaos until its admission queues fill; the router spills overflow
  into the healthy cell.  Conservation holds fleet-wide (every
  generated request books exactly one admission or one rejection) and
  per-request CRCs prove a spilled request returns bit-identical bytes.
* **Placement invariance** — the same workload routed under each
  placement policy (sticky / least-loaded / locality) produces the
  identical combined result digest: placement moves *where* a request
  runs, never *what* it computes.
* **Scaling** — per-cell tenant cohorts swept over 1, 2 and 4 cells on
  one shared clock; aggregate throughput scales near-linearly (>= 0.8x
  ideal at 4 cells) because cells share nothing but the clock.
* **Budget arbitration** — two autoscaling cells under a surge, their
  clamps summing past the fleet budget; the :class:`FleetController`
  grants scale-ups until the budget binds and denies past it, and the
  fleet-wide active total never exceeds the budget.

Every run is bit-identically reproducible from the root seed; with
``verify=True`` the bench replays the isolation run and asserts summary
equality, and ``--trace-dir`` re-runs it traced (router hop included)
under the usual zero-perturbation contract.  The report lands in
``benchmarks/BENCH_fleet.json`` via ``--bench-dir``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import FaultPlan
from ..fleet import Cell, FleetSystem, LongtailStream
from ..serve import AutoscalePolicy, ServeConfig, TenantSpec
from ..sim import Environment
from ..units import KiB, MiB
from .chaos_bench import CHAOS_RECOVERY
from .common import (
    RASTER,
    SERVE_NODES,
    ingest_files,
    scaled_duration,
    serve_platform,
)
from .experiments import ExperimentReport
from .platform import ExperimentPlatform, build_platform

#: Seconds of offered load per fleet run at the default scale.
DURATION = 6.0

#: Arrival-to-finish budget of the foreground cohort.  Generous (the
#: chaos-bench value) so faulted cells fail over instead of expiring.
FLEET_DEADLINE = 2.5

#: The SLO gate healthy cells are held to in the isolation run — the
#: serve-bench deadline, i.e. "a cell next to the blast acts like a
#: fault-free serve-bench cell".
HEALTHY_P99 = 0.5

#: Cell counts swept by the scaling runs.
CELL_COUNTS = (1, 2, 4)

#: Near-linearity floor: aggregate throughput at N cells must be at
#: least this fraction of N x the single-cell throughput.
SCALING_FLOOR = 0.8

#: Per-cohort offered rate (requests / simulated s) in the scaling runs.
COHORT_RATE = 8.0

#: Long-tail background: bytes per aggregated request and the per-cell
#: fluid-link capacity.
LONGTAIL_BYTES = 64 * KiB
LONGTAIL_CAPACITY = 8 * MiB

#: Autoscale clamp of each budget-run cell; the fleet budget is set
#: between ``2 * MIN_SERVERS`` and ``2 * MAX_SERVERS`` so the surge
#: makes the cells compete for headroom.
MIN_SERVERS = 2
MAX_SERVERS = 4
FLEET_BUDGET = 5

#: Control loop of the budget-run cells (autoscale-bench's shape).
BUDGET_POLICY = AutoscalePolicy(
    min_servers=MIN_SERVERS,
    max_servers=MAX_SERVERS,
    interval=0.25,
    p99_high=0.5,
    p99_low=0.25,
    queue_high=8,
    breach_ticks=2,
    calm_ticks=4,
    cooldown=1.0,
)


def fleet_tenants() -> Tuple[TenantSpec, ...]:
    """The fixed three-tenant foreground mix of the isolation /
    spillover / policy runs (alpha is the hot tenant)."""
    return (
        TenantSpec(
            "alpha",
            rate=6.0,
            weight=3.0,
            kernels=("gaussian", "flow-routing"),
            files=("dem_a",),
        ),
        TenantSpec(
            "beta",
            rate=3.0,
            weight=2.0,
            kernels=("gaussian",),
            files=("dem_b",),
        ),
        TenantSpec(
            "gamma",
            rate=2.0,
            weight=1.0,
            kernels=("flow-accumulation",),
            files=("dem_a", "dem_b"),
        ),
    )


def chaos_plan(pfs, duration: float) -> FaultPlan:
    """The stricken cell's schedule: a disk slowdown bracketing a
    crash/recovery round trip, everything healed by 0.8 of the run."""
    storage = pfs.cluster.storage_names
    return FaultPlan.parse(
        ";".join(
            (
                f"slow:{storage[2]}@{0.15 * duration:g}x0.05",
                f"crash:{storage[1]}@{0.3 * duration:g}",
                f"recover:{storage[1]}@{0.6 * duration:g}",
                f"restore:{storage[2]}@{0.8 * duration:g}",
            )
        )
    )


def longtail_streams(n_cells: int, duration: float) -> Tuple[LongtailStream, ...]:
    """One background population per cell: steady, then a mid-run rate
    step, then quiet for the drain tail."""
    return tuple(
        LongtailStream(
            f"bg-{i}",
            f"cell-{i}",
            LONGTAIL_BYTES,
            (
                (0.0, 40.0 + 10.0 * i),
                (duration / 2, 80.0),
                (0.75 * duration, 0.0),
            ),
        )
        for i in range(n_cells)
    )


def build_cell(
    env: Environment,
    name: str,
    tenants: Tuple[TenantSpec, ...],
    duration: float,
    platform: Optional[ExperimentPlatform] = None,
    chaos: bool = False,
    autoscale: Optional[AutoscalePolicy] = None,
) -> Cell:
    """One serving cell on the shared fleet clock.

    Every cell ingests the same rasters from the same platform seed —
    neighbour-replicated, so any cell survives a single crash and a
    request produces the same bytes wherever the router lands it.  The
    autoscaled cells ingest onto the small partition instead (the
    controller needs headroom to grow into).
    """
    platform = serve_platform(platform)
    _, pfs = build_platform(SERVE_NODES, platform, env=env)
    rng = np.random.default_rng(platform.seed)
    if autoscale is not None:
        subset = pfs.server_names[: autoscale.min_servers]
        ingest_files(pfs, "DAS", rng, policy="partition", servers=subset)
    else:
        ingest_files(pfs, "DAS", rng, policy="replicated")
    plan = chaos_plan(pfs, duration) if chaos else None
    config = ServeConfig(
        tenants=tenants,
        scheme="DAS",
        duration=duration,
        deadline=FLEET_DEADLINE,
        concurrency=8,
        queue_capacity=12,
        faults=plan,
        recovery=CHAOS_RECOVERY if plan is not None else None,
        decision_ttl=1.0 if plan is not None else None,
        autoscale=autoscale,
    )
    return Cell(name, pfs, config)


def fleet_run(
    n_cells: int,
    tenants: Tuple[TenantSpec, ...],
    duration: float,
    policy: str = "sticky",
    assignments: Optional[Dict[str, str]] = None,
    chaos_cell: Optional[int] = None,
    longtail: bool = False,
    autoscale: bool = False,
    budget: Optional[int] = None,
    ramp: Optional[Tuple[Tuple[float, float], ...]] = None,
    platform: Optional[ExperimentPlatform] = None,
    tracer=None,
    telemetry=None,
) -> Tuple[Dict[str, object], FleetSystem]:
    """One federated run: fresh clock, ``n_cells`` identical cells (bar
    the chaos plan / autoscale clamp), one router, one controller."""
    env = Environment()
    cells = [
        build_cell(
            env,
            f"cell-{i}",
            tenants,
            duration,
            platform=platform,
            chaos=chaos_cell == i,
            autoscale=BUDGET_POLICY if autoscale else None,
        )
        for i in range(n_cells)
    ]
    fleet = FleetSystem(
        env,
        cells,
        tenants,
        duration=duration,
        deadline=FLEET_DEADLINE,
        policy=policy,
        assignments=assignments,
        longtail=longtail_streams(n_cells, duration) if longtail else (),
        longtail_capacity=LONGTAIL_CAPACITY if longtail else 0.0,
        budget=budget,
        ramp=ramp,
        tracer=tracer,
        telemetry=telemetry,
    )
    return fleet.run(), fleet


def _cell_of(summary: Dict[str, object], name: str) -> Dict[str, object]:
    return next(c for c in summary["cells"] if c["cell"] == name)  # type: ignore[union-attr]


def _tenants_all(cell: Dict[str, object]) -> Dict[str, object]:
    return cell["tenants"]["_all"]  # type: ignore[index]


def _agg_throughput(summary: Dict[str, object]) -> float:
    return sum(
        _tenants_all(c)["throughput"] for c in summary["cells"]  # type: ignore[union-attr]
    )


def _rows(run: str, summary: Dict[str, object]) -> List[dict]:
    rows = []
    for cell in summary["cells"]:  # type: ignore[union-attr]
        t = _tenants_all(cell)
        faults = cell.get("faults") or {}
        rows.append(
            {
                "run": run,
                "policy": summary["policy"],
                "cells": summary["n_cells"],
                "cell": cell["cell"],
                "placed": summary["placements"][cell["cell"]],  # type: ignore[index]
                "admitted": cell["admitted"],
                "completed": t["completed"],
                "late": t["late"],
                "failed": t["failed"],
                "availability": round(t["availability"], 4),
                "throughput_rps": round(t["throughput"], 3),
                "p99_s": round(t["lat_p99"], 4),
                "spillovers": summary["spillovers"],
                "rejected": summary["rejected"],
                "failover_reads": faults.get("failover_reads", 0),
            }
        )
    return rows


def fleet_bench(
    platform=None,
    scale=None,
    verify=True,
    cell_counts: Sequence[int] = CELL_COUNTS,
    trace_dir=None,
    trace_sample: int = 1,
    telemetry_dir=None,
) -> ExperimentReport:
    """The multi-cell federation bench (registered as ``fleet-bench``).

    ``scale`` follows the harness convention (simulated bytes per paper
    GB) and maps onto each run's duration exactly as in serve-bench
    (floor 1.5 s).  At reduced scale the chaos lifecycle and the surge
    land too close to the drain, so the isolation-dynamics and budget
    checks only assert on full-length runs — conservation, placement
    invariance, scaling and replay assert always.
    """
    duration = scaled_duration(scale, DURATION, 1.5)
    full_length = duration >= DURATION
    tenants = fleet_tenants()
    sticky_3 = {"alpha": "cell-0", "beta": "cell-1", "gamma": "cell-2"}
    sticky_2 = {"alpha": "cell-0", "beta": "cell-0", "gamma": "cell-1"}

    rows: List[dict] = []
    summaries: Dict[str, Dict[str, object]] = {}
    systems: Dict[str, FleetSystem] = {}

    def run(label: str, **kw) -> Dict[str, object]:
        summary, system = fleet_run(platform=platform, **kw)
        summaries[label] = summary
        systems[label] = system
        rows.extend(_rows(label, summary))
        return summary

    # Isolation: chaos in cell-0 only, every cell carrying background
    # long-tail load, tenants pinned one per cell.
    isolation = run(
        "isolation",
        n_cells=3,
        tenants=tenants,
        duration=duration,
        policy="sticky",
        assignments=sticky_3,
        chaos_cell=0,
        longtail=True,
    )

    # Spillover: both hot tenants pinned to the stricken cell; its
    # queues jam and the router spills into the healthy cell.
    spill = run(
        "spillover",
        n_cells=2,
        tenants=tenants,
        duration=duration,
        policy="sticky",
        assignments=sticky_2,
        chaos_cell=0,
    )

    # Placement invariance: the same fault-free workload under each
    # policy (long-tail on, so least-loaded exercises its full signal).
    for policy in ("sticky", "least-loaded", "locality"):
        run(
            f"policy-{policy}",
            n_cells=2,
            tenants=tenants,
            duration=duration,
            policy=policy,
            longtail=True,
        )

    # Scaling: one tenant cohort per cell, swept over the cell counts.
    for n in cell_counts:
        cohorts = tuple(
            TenantSpec(
                f"cohort-{i}",
                rate=COHORT_RATE,
                weight=1.0,
                kernels=("gaussian",),
                files=("dem_a",),
            )
            for i in range(n)
        )
        run(
            f"scale-{n}",
            n_cells=n,
            tenants=cohorts,
            duration=duration,
            policy="sticky",
            assignments={f"cohort-{i}": f"cell-{i}" for i in range(n)},
        )

    # Budget arbitration: two autoscaling cells surging into a fleet
    # budget below the sum of their clamps.
    budget = run(
        "budget",
        n_cells=2,
        tenants=tenants,
        duration=duration,
        policy="sticky",
        assignments=sticky_2,
        autoscale=True,
        budget=FLEET_BUDGET,
        ramp=((0.0, 1.0), (duration / 4, 4.0), (0.75 * duration, 0.25)),
    )

    healthy = [_cell_of(isolation, n) for n in ("cell-1", "cell-2")]
    chaos = _cell_of(isolation, "cell-0")
    chaos_faults = chaos["faults"]  # type: ignore[index]
    longtail = isolation["longtail"]  # type: ignore[index]

    checks = []
    checks.append(
        (
            "isolation: the chaos cell rode out its faults on failover"
            " (one crash, one recovery, halo-replica reads > 0)",
            chaos_faults["crashes"] == 1  # type: ignore[index]
            and chaos_faults["recoveries"] == 1  # type: ignore[index]
            and chaos_faults["failover_reads"] > 0,  # type: ignore[index]
        )
    )
    if full_length:
        healthy_p99 = max(_tenants_all(c)["lat_p99"] for c in healthy)
        checks.append(
            (
                "isolation: the stricken cell cannot breach a healthy"
                " cell's SLO — every healthy cell keeps 100% availability"
                f" and p99 <= {HEALTHY_P99:g}s (worst {healthy_p99:.4f}s)",
                all(_tenants_all(c)["availability"] == 1.0 for c in healthy)
                and healthy_p99 <= HEALTHY_P99,
            )
        )
        checks.append(
            (
                "isolation: the router's probes saw the cell degrade and"
                " heal (>= 2 health transitions, all cells healthy at the"
                " end)",
                isolation["health"]["transitions"] >= 2  # type: ignore[index]
                and isolation["health"]["healthy_final"] == 3,  # type: ignore[index]
            )
        )
    checks.append(
        (
            "isolation: the long-tail fluid streams conserve — every"
            f" offered background request drained"
            f" ({longtail['completed_requests']} requests)",  # type: ignore[index]
            longtail["conservation_ok"] and longtail["completed_requests"] > 0,  # type: ignore[index]
        )
    )
    if full_length:
        checks.append(
            (
                "spillover: jamming the hot cell's queues pushed overflow"
                f" into the healthy cell ({spill['spillovers']} spillovers)",
                spill["spillovers"] > 0,  # type: ignore[operator]
            )
        )
    checks.append(
        (
            "spillover: fleet-wide conservation — every generated request"
            " books exactly one admission or one rejection"
            f" ({spill['generated']} = {spill['admitted']} +"
            f" {spill['rejected']})",
            spill["generated"] == spill["admitted"] + spill["rejected"],  # type: ignore[operator]
        )
    )
    checks.append(
        (
            "spillover: a spilled request returns bit-identical bytes —"
            " per-request CRCs agree across cells for every"
            " (file, operator, pipeline) key",
            spill["digest_consistency"]["consistent"],  # type: ignore[index]
        )
    )
    policy_crcs = {
        p: summaries[f"policy-{p}"]["result_digest"]["crc"]  # type: ignore[index]
        for p in ("sticky", "least-loaded", "locality")
    }
    checks.append(
        (
            "placement invariance: sticky, least-loaded and locality route"
            " the same workload to different cells yet produce the"
            " identical combined result digest",
            len(set(policy_crcs.values())) == 1
            and all(
                summaries[f"policy-{p}"]["rejected"] == 0 for p in policy_crcs
            ),
        )
    )
    thr = {n: _agg_throughput(summaries[f"scale-{n}"]) for n in cell_counts}
    base = thr[cell_counts[0]]
    scaling_ok = base > 0 and all(
        thr[n] >= SCALING_FLOOR * (n / cell_counts[0]) * base
        for n in cell_counts[1:]
    )
    thr_text = ", ".join(f"{n} cells {thr[n]:.2f} rps" for n in cell_counts)
    checks.append(
        (
            "scaling: aggregate throughput is near-linear in cell count"
            f" (>= {SCALING_FLOOR:g}x ideal; {thr_text})",
            scaling_ok,
        )
    )
    checks.append(
        (
            "scaling: no run sheds — offered load stays proportional to"
            " capacity at every cell count",
            all(
                summaries[f"scale-{n}"]["rejected"] == 0 for n in cell_counts
            ),
        )
    )
    if full_length:
        controller = systems["budget"].controller
        denied = budget["fleet"]["scale_denied"]  # type: ignore[index]
        granted = budget["fleet"]["scale_grants"]  # type: ignore[index]
        checks.append(
            (
                "budget: the surge makes the cells compete — the fleet"
                f" controller granted {granted} resize(s) and denied"
                f" {denied} scale-up(s) past the {FLEET_BUDGET}-server"
                " budget",
                granted > 0 and denied > 0,
            )
        )
        checks.append(
            (
                "budget: the fleet-wide active total never exceeded the"
                " budget at any observation tick",
                all(
                    obs["total_active"] <= FLEET_BUDGET
                    for obs in controller.trace
                )
                and budget["fleet"]["active_final"] <= FLEET_BUDGET,  # type: ignore[index]
            )
        )
    checks.append(
        (
            "conservation: every admitted request settled exactly once in"
            " every cell of every run",
            all(
                c["admitted"] == c["settled"]
                for s in summaries.values()
                for c in s["cells"]  # type: ignore[union-attr]
            ),
        )
    )
    if verify:
        replay, _ = fleet_run(
            n_cells=3,
            tenants=tenants,
            duration=duration,
            policy="sticky",
            assignments=sticky_3,
            chaos_cell=0,
            longtail=True,
            platform=platform,
        )
        checks.append(
            (
                "bit-identical replay: the isolation run reproduces the"
                " same fleet summary (placements, health transitions and"
                " per-request digests included) from the same seed",
                replay == isolation,
            )
        )

    if trace_dir is not None:
        from .tracing import traced_replay

        trace_checks, _ = traced_replay(
            "fleet_isolation",
            lambda tracer: fleet_run(
                n_cells=3,
                tenants=tenants,
                duration=duration,
                policy="sticky",
                assignments=sticky_3,
                chaos_cell=0,
                longtail=True,
                platform=platform,
                tracer=tracer,
            )[0],
            isolation,
            trace_dir,
            meta={"bench": "fleet-bench", "run": "isolation",
                  "duration": duration},
            sample=1.0 / max(1, int(trace_sample)),
        )
        checks += trace_checks

    aux_checks = []
    if telemetry_dir is not None:
        from .telemetry import telemetry_replay

        # The isolation run in alert form: the router's probes page
        # fleet-unhealthy while cell-0 rides out its faults (and resolve
        # it once healed), spillover tickets while traffic diverts, and
        # the stricken cell's own admission heartbeat stalls mid-crash.
        # The healthy cells' ledgers staying empty IS the isolation
        # claim.  Reduced-scale runs skip the expectations with the
        # other lifecycle checks.
        expect = (
            ("fleet-unhealthy", "fleet-spillover", "admission-stall")
            if full_length
            else ()
        )

        def _telemetered(config):
            summary, system = fleet_run(
                n_cells=3,
                tenants=tenants,
                duration=duration,
                policy="sticky",
                assignments=sticky_3,
                chaos_cell=0,
                longtail=True,
                platform=platform,
                telemetry=config,
            )
            return summary, system.telemetry

        telemetry_checks, _ = telemetry_replay(
            "fleet_isolation",
            _telemetered,
            isolation,
            telemetry_dir,
            meta={"bench": "fleet-bench", "run": "isolation",
                  "duration": duration},
            expect_fired=expect,
            expect_resolved=expect,
        )
        aux_checks += telemetry_checks

    return ExperimentReport(
        experiment="fleet-bench",
        title="Fleet federation: isolation, spillover, placement, scaling",
        rows=rows,
        checks=checks,
        aux_checks=aux_checks,
        notes=(
            f"{SERVE_NODES}-node cells (half storage), {RASTER[0]}x{RASTER[1]}"
            f" rasters replicated per cell, {duration:g}s per run, deadline"
            f" {FLEET_DEADLINE:g}s; chaos = slow+crash+recover in cell-0;"
            f" long-tail {LONGTAIL_BYTES // KiB} KiB requests over"
            f" {LONGTAIL_CAPACITY / MiB:g} MiB/s per-cell fluid links;"
            f" scaling cohorts at {COHORT_RATE:g} rps/cell over cell counts"
            f" {tuple(cell_counts)}; budget run: clamp"
            f" [{MIN_SERVERS}, {MAX_SERVERS}] x2 cells vs fleet budget"
            f" {FLEET_BUDGET}."
            + (
                ""
                if full_length
                else " Reduced scale: isolation-dynamics, spillover and"
                " budget checks skipped (the fault/surge lifecycles need"
                " the full duration)."
            )
        ),
    )
