"""Traffic accounting: classify every wire byte by the link class it
crossed.

The paper's analysis hinges on *where* bytes move: NAS loses because of
server<->server dependent-data traffic plus the serving load it brings;
TS pays client<->storage traffic for the whole dataset; DAS pays almost
nothing after (amortised) redistribution.  A :class:`TrafficMeter`
snapshots the monitor counters around a measured region and reports the
deltas split along those lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..hw.cluster import Cluster

_FLOW_PREFIX = "net.flow."
_TAG_PREFIX = "net.tag."


@dataclass
class TrafficDelta:
    """Byte movement between two snapshots, classified by link class."""

    #: storage <-> compute (and compute <-> compute) bytes.
    client_bytes: float = 0.0
    #: storage <-> storage bytes (dependent data, replication, redistribution).
    server_bytes: float = 0.0
    #: Same-node loopback bytes (never on the wire).
    loopback_bytes: float = 0.0
    #: Bytes per transport tag (halo vs pfs vs redist vs control...).
    by_tag: Dict[str, float] = field(default_factory=dict)

    @property
    def wire_bytes(self) -> float:
        return self.client_bytes + self.server_bytes

    def tag_bytes(self, tag: str) -> float:
        return self.by_tag.get(tag, 0.0)


class TrafficMeter:
    """Meters wire traffic over a region of simulated time."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.monitors = cluster.monitors
        self._storage = set(cluster.storage_names)
        self._before = self._snapshot()

    def _snapshot(self) -> Dict[str, float]:
        return dict(self.monitors.snapshot())

    def reset(self) -> None:
        self._before = self._snapshot()

    def delta(self) -> TrafficDelta:
        """Classified byte movement since construction (or last reset)."""
        after = self._snapshot()
        out = TrafficDelta()
        for name, value in after.items():
            moved = value - self._before.get(name, 0.0)
            if moved <= 0:
                continue
            if name.startswith(_FLOW_PREFIX):
                src, _, dst = name[len(_FLOW_PREFIX):].partition("->")
                if src in self._storage and dst in self._storage:
                    out.server_bytes += moved
                else:
                    out.client_bytes += moved
            elif name.startswith(_TAG_PREFIX):
                tag = name[len(_TAG_PREFIX):]
                out.by_tag[tag] = out.by_tag.get(tag, 0.0) + moved
            elif name == "net.loopback_bytes":
                out.loopback_bytes += moved
        return out


def sustained_bandwidth(data_bytes: float, elapsed: float) -> float:
    """The paper's Fig. 14 metric: useful dataset bytes processed per
    second of operation time."""
    return data_bytes / elapsed if elapsed > 0 else float("inf")
