"""A declared catalog over the MonitorHub's counters and gauges.

`MonitorHub` is create-on-first-use: any subsystem can book any name,
which is how four PRs of counters (``faults.*``, ``autoscale.*``,
``serve.*``, wire accounting...) accreted without a single place that
says what exists, what unit it carries, or what it means.  The
:data:`CATALOG` is that place: every metric the runtime books is either
declared exactly (:class:`MetricSpec`) or covered by a declared
*family* — a name prefix for per-node / per-flow / per-file fan-outs
(``net.flow.c0->s1`` is an instance of the ``net.flow.`` family).

:class:`MetricRegistry` wraps a hub with catalog-aware access plus
:class:`Histogram` support (the distribution type the hub lacks);
``scripts/check_counters.py`` and the docs-consistency CI job use
:meth:`MetricRegistry.undeclared` to fail the build when a new counter
ships without a declaration, and docs/OPERATIONS.md documents the
catalog itself.

Histograms summarise through the same nearest-rank
:func:`~repro.metrics.stats.latency_summary` the SLO board uses — one
quantile implementation in the tree, not two.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ServeError
from .stats import LatencySummary, latency_summary

__all__ = [
    "MetricSpec",
    "Histogram",
    "MetricRegistry",
    "CATALOG",
    "catalog_lookup",
]

#: Metric kinds.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric (or metric family)."""

    name: str
    kind: str  # counter | gauge | histogram
    unit: str  # bytes | requests | events | seconds | servers | ...
    help: str
    #: True when ``name`` is a prefix covering a fan-out of instances
    #: (per node, per flow, per file); exact match otherwise.
    family: bool = False

    def covers(self, name: str) -> bool:
        return name.startswith(self.name) if self.family else name == self.name


def _spec(name, kind, unit, help, family=False) -> MetricSpec:
    return MetricSpec(name, kind, unit, help, family)


#: Every metric the runtime books, declared.  Kept in lockstep with
#: docs/OPERATIONS.md by ``scripts/check_counters.py``.
CATALOG: Tuple[MetricSpec, ...] = (
    # -- alerting engine (telemetry scopes) -----------------------------------
    _spec("alert.fired", COUNTER, "events",
          "Alert-rule fire transitions booked by the alert engine"),
    _spec("alert.resolved", COUNTER, "events",
          "Alert-rule resolve transitions booked by the alert engine"),
    _spec("alert.active", GAUGE, "alerts",
          "Alert rules currently firing in this scope"),
    # -- active-storage offload path ------------------------------------------
    _spec("as.exec.amortised_requests", COUNTER, "requests",
          "Batch riders served without their own exec fan-out"),
    _spec("as.halo_bytes_local", COUNTER, "bytes",
          "Halo bytes satisfied from the server's own strips"),
    _spec("as.halo_bytes_remote", COUNTER, "bytes",
          "Halo bytes pulled from peer storage servers"),
    _spec("as.rpc.header_bytes", COUNTER, "bytes",
          "Fixed per-message exec RPC header bytes"),
    _spec("as.rpc.item_bytes", COUNTER, "bytes",
          "Per-extra-batch-member exec RPC descriptor bytes"),
    # -- autoscale controller -------------------------------------------------
    _spec("autoscale.ticks", COUNTER, "events", "Control-loop observations"),
    _spec("autoscale.breaches", COUNTER, "events",
          "Ticks whose SLO signal breached (p99 or queue depth)"),
    _spec("autoscale.cooldown_holds", COUNTER, "events",
          "Ticks where an action was withheld by the cooldown"),
    _spec("autoscale.scale_ups", COUNTER, "events", "Committed partition growths"),
    _spec("autoscale.scale_downs", COUNTER, "events", "Committed partition shrinks"),
    _spec("autoscale.moved_bytes", COUNTER, "bytes",
          "Bytes redistributed by resize actions"),
    _spec("autoscale.active", GAUGE, "servers",
          "Current active storage partition size"),
    # -- devices (per-node fan-outs) ------------------------------------------
    _spec("cpu.busy.", COUNTER, "seconds", "Busy seconds per node CPU",
          family=True),
    _spec("disk.read.", COUNTER, "bytes", "Bytes read per node disk",
          family=True),
    _spec("disk.write.", COUNTER, "bytes", "Bytes written per node disk",
          family=True),
    _spec("disk.read_total", COUNTER, "bytes", "Bytes read across all disks"),
    _spec("disk.write_total", COUNTER, "bytes", "Bytes written across all disks"),
    # -- fault subsystem ------------------------------------------------------
    _spec("faults.crashes", COUNTER, "events", "Node crash events applied"),
    _spec("faults.recoveries", COUNTER, "events", "Node recover events applied"),
    _spec("faults.disk_degraded", COUNTER, "events", "Disk slow events applied"),
    _spec("faults.disk_restored", COUNTER, "events", "Disk restore events applied"),
    _spec("faults.link_cuts", COUNTER, "events", "Link cut events applied"),
    _spec("faults.link_heals", COUNTER, "events", "Link heal events applied"),
    _spec("faults.dropped_requests", COUNTER, "events",
          "RPCs dropped en route to a dead/unreachable server"),
    _spec("faults.dropped_replies", COUNTER, "events",
          "RPC replies lost to a failure after service"),
    _spec("faults.error_replies", COUNTER, "events",
          "Fault notices returned in place of results"),
    _spec("faults.failover_reads", COUNTER, "events",
          "Extents re-homed onto a live replica"),
    _spec("faults.hedged_reads", COUNTER, "events", "Hedge reads launched"),
    _spec("faults.hedge_wins", COUNTER, "events",
          "Hedges that beat the primary attempt"),
    _spec("faults.rpc_timeouts", COUNTER, "events",
          "Attempts abandoned at the detection timeout"),
    _spec("faults.retries", COUNTER, "events", "RPC attempts retried"),
    _spec("faults.degraded_decisions", COUNTER, "requests",
          "Offloads refused because a strip holder was down"),
    _spec("faults.downtime_seconds", COUNTER, "seconds",
          "Summed outage durations of completed repairs"),
    # -- fleet federation tier ------------------------------------------------
    _spec("fleet.routed", COUNTER, "requests",
          "Requests placed by the fleet router"),
    _spec("fleet.routed.", COUNTER, "requests",
          "Requests admitted per cell", family=True),
    _spec("fleet.spillovers", COUNTER, "requests",
          "Requests admitted off their primary cell"),
    _spec("fleet.rejected", COUNTER, "requests",
          "Requests shed fleet-wide (no cell had queue room)"),
    _spec("fleet.probes", COUNTER, "events",
          "Health-probe sweeps across the fleet"),
    _spec("fleet.transitions", COUNTER, "events",
          "Cell health flips observed by the prober"),
    _spec("fleet.cells_healthy", GAUGE, "cells",
          "Cells currently probed healthy"),
    _spec("fleet.active_servers", GAUGE, "servers",
          "Fleet-wide active storage-partition total"),
    _spec("fleet.scale_grants", COUNTER, "events",
          "Cell resizes granted by the budget arbiter"),
    _spec("fleet.scale_denied", COUNTER, "events",
          "Cell scale-ups denied by the server budget"),
    _spec("fleet.longtail.requests", COUNTER, "requests",
          "Aggregated long-tail requests drained"),
    _spec("fleet.longtail.bytes", COUNTER, "bytes",
          "Aggregated long-tail bytes drained"),
    _spec("fleet.longtail.util.", GAUGE, "fraction",
          "Long-tail link utilization per cell", family=True),
    # -- network fabric -------------------------------------------------------
    _spec("net.bytes_total", COUNTER, "bytes", "All bytes crossing the fabric"),
    _spec("net.loopback_bytes", COUNTER, "bytes",
          "Bytes 'sent' node-local (no fabric crossing)"),
    _spec("net.flow.", COUNTER, "bytes", "Bytes per directed src->dst flow",
          family=True),
    _spec("net.rx.", COUNTER, "bytes", "Bytes received per node", family=True),
    _spec("net.tx.", COUNTER, "bytes", "Bytes transmitted per node", family=True),
    _spec("net.tag.", COUNTER, "bytes", "Bytes per traffic class tag",
          family=True),
    # -- PFS ------------------------------------------------------------------
    _spec("pfs.cache.hits.", COUNTER, "events", "Strip-cache hits per server",
          family=True),
    _spec("pfs.cache.misses.", COUNTER, "events",
          "Strip-cache misses per server", family=True),
    _spec("pfs.cache.evictions.", COUNTER, "events",
          "Strip-cache evictions per server", family=True),
    _spec("pfs.cache_hit_bytes.", COUNTER, "bytes",
          "Bytes served from strip caches per file", family=True),
    _spec("pfs.redistribute_bytes", COUNTER, "bytes",
          "Bytes moved by layout redistributions"),
    _spec("pfs.rpc.extent_desc_bytes", COUNTER, "bytes",
          "Per-extent descriptor bytes on PFS RPCs"),
    _spec("pfs.rpc.header_bytes", COUNTER, "bytes",
          "Fixed per-message PFS RPC header bytes"),
    # -- serving layer --------------------------------------------------------
    _spec("serve.admitted", COUNTER, "requests", "Requests admitted"),
    _spec("serve.rejected", COUNTER, "requests", "Requests shed at admission"),
    _spec("serve.retries", COUNTER, "requests", "Request retry attempts"),
    _spec("serve.completed", COUNTER, "requests",
          "Requests finished within deadline"),
    _spec("serve.late", COUNTER, "requests", "Requests finished past deadline"),
    _spec("serve.expired", COUNTER, "requests",
          "Requests dropped at dequeue (deadline passed while queued)"),
    _spec("serve.failed", COUNTER, "requests",
          "Requests failed after all retry attempts"),
    _spec("serve.diverted", COUNTER, "requests",
          "Accepted offloads diverted to the normal path by load"),
    _spec("serve.path.normal", COUNTER, "requests",
          "Requests served by client-side compute"),
    _spec("serve.path.offload", COUNTER, "requests",
          "Requests served by server-side offload"),
    _spec("serve.redistributions", COUNTER, "events",
          "Load-driven layout redistributions"),
    _spec("serve.queue.depth", GAUGE, "requests", "Total admission-queue depth"),
    _spec("serve.inflight.offload", GAUGE, "requests",
          "In-flight requests on the storage partition"),
    _spec("serve.inflight.normal", GAUGE, "requests",
          "In-flight requests on the compute partition"),
    _spec("serve.latency", HISTOGRAM, "seconds",
          "Arrival-to-finish latency of finished requests"),
    _spec("serve.latency.", HISTOGRAM, "seconds",
          "Arrival-to-finish latency per tenant", family=True),
    # -- telemetry sampler ----------------------------------------------------
    _spec("telemetry.samples", COUNTER, "events",
          "Boundary scrapes taken of this scope"),
    _spec("telemetry.series", GAUGE, "series",
          "Ring-buffer time-series held for this scope"),
)


def catalog_lookup(name: str, catalog: Iterable[MetricSpec] = CATALOG):
    """The spec covering ``name`` (exact beats family), else ``None``."""
    fallback = None
    for spec in catalog:
        if not spec.family and spec.name == name:
            return spec
        if spec.family and spec.covers(name):
            fallback = fallback or spec
    return fallback


def _default_buckets() -> Tuple[float, ...]:
    """Half-decade log grid from 1 ms to 100 s — wide enough for every
    simulated latency the benches produce, deterministic by construction."""
    bounds = []
    value = 0.001
    while value <= 100.0:
        bounds.append(round(value, 6))
        bounds.append(round(value * 3.162278, 6))
        value *= 10.0
    return tuple(b for b in bounds if b <= 100.0)


DEFAULT_BUCKETS = _default_buckets()


class Histogram:
    """Bucketed distribution with exact count/sum/min/max.

    Raw samples are kept (simulated runs are small) so
    :meth:`summary` can defer to the canonical nearest-rank
    :func:`~repro.metrics.stats.latency_summary` instead of a second,
    approximate quantile implementation.
    """

    def __init__(self, name: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or not buckets:
            raise ServeError(f"histogram buckets must be sorted, got {buckets!r}")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        #: counts[i] tallies samples <= buckets[i]; the last slot is +Inf.
        self.counts = [0] * (len(self.buckets) + 1)
        self.samples: List[float] = []
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.samples.append(float(value))
        self.total += float(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def summary(self) -> LatencySummary:
        return latency_summary(self.samples)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                ("+Inf" if i == len(self.buckets) else f"{self.buckets[i]:g}"): n
                for i, n in enumerate(self.counts)
                if n
            },
        }


class MetricRegistry:
    """Catalog-aware view over a :class:`~repro.sim.monitor.MonitorHub`.

    Counters and gauges still live in (and are booked through) the hub —
    the registry adds declaration checking, histograms, and a unified
    snapshot.  Attaching a registry changes nothing about how the run
    executes; it only reads.
    """

    def __init__(self, monitors, catalog: Iterable[MetricSpec] = CATALOG):
        self.monitors = monitors
        self.catalog: Tuple[MetricSpec, ...] = tuple(catalog)
        names = [s.name for s in self.catalog]
        if len(set(names)) != len(names):
            raise ServeError("metric catalog declares a name twice")
        self.histograms: Dict[str, Histogram] = {}

    # -- access ----------------------------------------------------------------
    def spec(self, name: str) -> Optional[MetricSpec]:
        return catalog_lookup(name, self.catalog)

    def counter(self, name: str):
        self._require(name, COUNTER)
        return self.monitors.counter(name)

    def gauge(self, name: str):
        self._require(name, GAUGE)
        return self.monitors.gauge(name)

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            self._require(name, HISTOGRAM)
            hist = self.histograms[name] = Histogram(name)
        return hist

    def _require(self, name: str, kind: str) -> None:
        spec = self.spec(name)
        if spec is None:
            raise ServeError(f"metric {name!r} is not declared in the catalog")
        if spec.kind != kind:
            raise ServeError(
                f"metric {name!r} is declared as a {spec.kind}, used as a {kind}"
            )

    # -- lint ------------------------------------------------------------------
    def undeclared(self) -> List[str]:
        """Names booked in the hub that no catalog entry covers."""
        booked = list(self.monitors.counters) + list(self.monitors.gauges)
        return sorted(n for n in booked if self.spec(n) is None)

    def mistyped(self) -> List[str]:
        """Booked names whose declared kind disagrees with their use."""
        out = []
        for name in self.monitors.counters:
            spec = self.spec(name)
            if spec is not None and spec.kind != COUNTER:
                out.append(f"{name}: booked as counter, declared {spec.kind}")
        for name in self.monitors.gauges:
            spec = self.spec(name)
            if spec is not None and spec.kind != GAUGE:
                out.append(f"{name}: booked as gauge, declared {spec.kind}")
        return sorted(out)

    # -- reporting -------------------------------------------------------------
    def describe(self) -> List[dict]:
        """The catalog as rows (docs + check_counters render this)."""
        return [
            {
                "name": s.name + ("*" if s.family else ""),
                "kind": s.kind,
                "unit": s.unit,
                "help": s.help,
            }
            for s in self.catalog
        ]

    def snapshot(self) -> Dict[str, object]:
        """Counters, gauge levels, and histogram summaries in one dict."""
        out: Dict[str, object] = dict(self.monitors.snapshot())
        for name, gauge in self.monitors.gauges.items():
            out[name] = gauge.level
        for name, hist in sorted(self.histograms.items()):
            out[name] = hist.as_dict()
        return out
