"""Timeline reconstruction from the monitor trace.

When a cluster is built with ``SimConfig(trace=True)``, every CPU
kernel invocation, disk I/O and network transfer leaves a trace record.
:class:`Timeline` turns those records into per-node busy intervals and
utilisation numbers, and :func:`render_gantt` draws a plain-text Gantt
chart — enough to *see* why NAS is slow (servers ping-ponging between
serving and computing) without leaving the terminal.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.monitor import MonitorHub, TraceRecord

Interval = Tuple[float, float]


@dataclass
class Timeline:
    """Busy intervals per (node, resource kind)."""

    #: (node, kind) -> sorted list of [start, end) busy intervals.
    busy: Dict[Tuple[str, str], List[Interval]]
    horizon: float

    @classmethod
    def from_monitors(cls, monitors: MonitorHub) -> "Timeline":
        """Build from a trace-enabled monitor hub.

        CPU and disk records carry their duration and are logged at
        completion, so each becomes the interval ``[t - seconds, t)``.
        """
        busy: Dict[Tuple[str, str], List[Interval]] = defaultdict(list)
        horizon = 0.0
        for rec in monitors.trace:
            horizon = max(horizon, rec.time)
            if rec.category in ("cpu", "disk"):
                node = rec.detail.split(":", 1)[0]
                seconds = float(rec.data.get("seconds", 0.0))
                if seconds > 0:
                    busy[(node, rec.category)].append((rec.time - seconds, rec.time))
        for intervals in busy.values():
            intervals.sort()
        return cls(busy=dict(busy), horizon=horizon)

    def intervals(self, node: str, kind: str) -> List[Interval]:
        return self.busy.get((node, kind), [])

    def busy_seconds(self, node: str, kind: str) -> float:
        """Total busy time with overlaps merged."""
        merged = self.merged(node, kind)
        return sum(b - a for a, b in merged)

    def merged(self, node: str, kind: str) -> List[Interval]:
        out: List[Interval] = []
        for a, b in self.intervals(node, kind):
            if out and a <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], b))
            else:
                out.append((a, b))
        return out

    def utilization(self, node: str, kind: str, horizon: float | None = None) -> float:
        """Busy fraction of the run (or of an explicit horizon)."""
        span = horizon if horizon is not None else self.horizon
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_seconds(node, kind) / span)

    def nodes(self) -> List[str]:
        return sorted({node for node, _ in self.busy})


def render_gantt(timeline: Timeline, width: int = 64) -> str:
    """Plain-text Gantt: one row per (node, kind), '#' where busy."""
    if timeline.horizon <= 0:
        return "(empty timeline)"
    lines = []
    scale = width / timeline.horizon
    for node in timeline.nodes():
        for kind in ("cpu", "disk"):
            merged = timeline.merged(node, kind)
            if not merged:
                continue
            row = [" "] * width
            for a, b in merged:
                lo = min(width - 1, int(a * scale))
                hi = min(width, max(lo + 1, int(b * scale + 0.5)))
                for i in range(lo, hi):
                    row[i] = "#"
            lines.append(f"{node:>6s} {kind:<4s} |{''.join(row)}|")
    return "\n".join(lines) if lines else "(no busy intervals)"


def utilization_table(timeline: Timeline) -> List[dict]:
    """Rows of per-node utilisation suitable for
    :func:`repro.metrics.report.format_table`."""
    rows = []
    for node in timeline.nodes():
        rows.append(
            {
                "node": node,
                "cpu_util": timeline.utilization(node, "cpu"),
                "disk_util": timeline.utilization(node, "disk"),
                "cpu_busy_s": timeline.busy_seconds(node, "cpu"),
                "disk_busy_s": timeline.busy_seconds(node, "disk"),
            }
        )
    return rows
