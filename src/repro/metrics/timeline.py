"""Timeline reconstruction — a projection of the span model.

When a cluster is built with ``SimConfig(trace=True)``, every CPU
kernel invocation and disk I/O leaves a trace record.  Those records
become detached :class:`~repro.obs.span.Span` objects (see
:func:`repro.obs.spans_from_monitor_trace`), and a :class:`Timeline`
is nothing more than their projection onto per-``(node, kind)`` busy
intervals; the interval algebra (merging, total measure) lives in
:mod:`repro.obs.span` and is shared with the tracer.  The public API —
:class:`Timeline`, :func:`render_gantt`, :func:`utilization_table` —
is unchanged.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..obs.span import (
    Interval,
    Span,
    intervals_total,
    merge_intervals,
    spans_from_monitor_trace,
)
from ..sim.monitor import MonitorHub

__all__ = ["Interval", "Timeline", "render_gantt", "utilization_table"]


@dataclass
class Timeline:
    """Busy intervals per (node, resource kind)."""

    #: (node, kind) -> sorted list of [start, end) busy intervals.
    busy: Dict[Tuple[str, str], List[Interval]]
    horizon: float

    @classmethod
    def from_spans(cls, spans: List[Span], horizon: float = 0.0) -> "Timeline":
        """Project device spans (track=node, cat=kind) onto busy lanes."""
        busy: Dict[Tuple[str, str], List[Interval]] = defaultdict(list)
        for span in spans:
            if span.end is None:
                continue
            horizon = max(horizon, span.end)
            busy[(span.track, span.cat)].append((span.start, span.end))
        for intervals in busy.values():
            intervals.sort()
        return cls(busy=dict(busy), horizon=horizon)

    @classmethod
    def from_monitors(cls, monitors: MonitorHub) -> "Timeline":
        """Build from a trace-enabled monitor hub.

        CPU and disk records carry their duration and are logged at
        completion, so each becomes the span ``[t - seconds, t)``.
        """
        horizon = max((rec.time for rec in monitors.trace), default=0.0)
        return cls.from_spans(spans_from_monitor_trace(monitors), horizon)

    def intervals(self, node: str, kind: str) -> List[Interval]:
        return self.busy.get((node, kind), [])

    def busy_seconds(self, node: str, kind: str) -> float:
        """Total busy time with overlaps merged."""
        return intervals_total(self.intervals(node, kind))

    def merged(self, node: str, kind: str) -> List[Interval]:
        return merge_intervals(self.intervals(node, kind))

    def utilization(self, node: str, kind: str, horizon: float | None = None) -> float:
        """Busy fraction of the run (or of an explicit horizon)."""
        span = horizon if horizon is not None else self.horizon
        if span <= 0:
            return 0.0
        return min(1.0, self.busy_seconds(node, kind) / span)

    def nodes(self) -> List[str]:
        return sorted({node for node, _ in self.busy})


def render_gantt(timeline: Timeline, width: int = 64) -> str:
    """Plain-text Gantt: one row per (node, kind), '#' where busy."""
    if timeline.horizon <= 0:
        return "(empty timeline)"
    lines = []
    scale = width / timeline.horizon
    for node in timeline.nodes():
        for kind in ("cpu", "disk"):
            merged = timeline.merged(node, kind)
            if not merged:
                continue
            row = [" "] * width
            for a, b in merged:
                lo = min(width - 1, int(a * scale))
                hi = min(width, max(lo + 1, int(b * scale + 0.5)))
                for i in range(lo, hi):
                    row[i] = "#"
            lines.append(f"{node:>6s} {kind:<4s} |{''.join(row)}|")
    return "\n".join(lines) if lines else "(no busy intervals)"


def utilization_table(timeline: Timeline) -> List[dict]:
    """Rows of per-node utilisation suitable for
    :func:`repro.metrics.report.format_table`."""
    rows = []
    for node in timeline.nodes():
        rows.append(
            {
                "node": node,
                "cpu_util": timeline.utilization(node, "cpu"),
                "disk_util": timeline.utilization(node, "disk"),
                "cpu_busy_s": timeline.busy_seconds(node, "cpu"),
                "disk_busy_s": timeline.busy_seconds(node, "disk"),
            }
        )
    return rows
