"""Plain-text table/series rendering for experiment reports.

The harness prints the same rows/series the paper's figures plot, plus
a shape-check section stating whether each of the paper's qualitative
claims held in this run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from .stats import LatencySummary


def format_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Fixed-width text table from dict rows."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    return f"{header}\n{rule}\n{body}"


def format_series(
    title: str, series: Dict[str, List[Tuple[Any, float]]], unit: str = ""
) -> str:
    """Render named (x, y) series like the paper's line charts."""
    lines = [title]
    for name in sorted(series):
        points = ", ".join(f"{x}: {y:.4g}{unit}" for x, y in series[name])
        lines.append(f"  {name:28s} {points}")
    return "\n".join(lines)


def format_latency_table(
    summaries: Dict[str, LatencySummary], unit: str = "s", scale: float = 1.0
) -> str:
    """Render named latency digests as one table row per name.

    ``scale`` multiplies every statistic (e.g. 1e3 with ``unit="ms"``).
    All aggregation lives in :func:`repro.metrics.stats.latency_summary`;
    this function only formats.
    """
    rows = []
    for name, summary in summaries.items():
        row: Dict[str, Any] = {"name": name, "count": summary.count}
        for stat in ("mean", "p50", "p95", "p99", "max"):
            row[f"{stat}_{unit}"] = getattr(summary, stat) * scale
        rows.append(row)
    return format_table(rows)


def format_checks(checks: Sequence[Tuple[str, bool]]) -> str:
    """Render the shape-check verdicts."""
    lines = ["shape checks:"]
    for claim, ok in checks:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {claim}")
    return "\n".join(lines)
