"""Measurement plane of the fault subsystem: roll up ``faults.*``.

Everything the injector and the recovery paths do is booked into
monitor counters as it happens; :func:`fault_summary` condenses them
into one deterministic dict for serving summaries and the chaos bench.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.monitor import MonitorHub

#: Integer event tallies booked under ``faults.<name>``.
FAULT_COUNTERS = (
    "crashes",
    "recoveries",
    "disk_degraded",
    "disk_restored",
    "link_cuts",
    "link_heals",
    "dropped_requests",
    "dropped_replies",
    "error_replies",
    "failover_reads",
    "hedged_reads",
    "hedge_wins",
    "rpc_timeouts",
    "retries",
    "degraded_decisions",
)


def fault_summary(monitors: MonitorHub, injector=None) -> Dict[str, object]:
    """Fault/recovery tallies plus repair timing when an injector ran.

    ``injector`` is an optional
    :class:`~repro.faults.injector.FaultInjector`; with one, the
    summary includes MTTR (mean time to repair over completed outages),
    the repair count, and how many plan events were applied.
    """
    out: Dict[str, object] = {
        name: int(monitors.counter(f"faults.{name}").value)
        for name in FAULT_COUNTERS
    }
    out["downtime_seconds"] = float(
        monitors.counter("faults.downtime_seconds").value
    )
    if injector is not None:
        out["mttr"] = injector.mttr()
        out["repairs"] = injector.repairs
        out["events_applied"] = len(injector.applied)
        out["still_down"] = list(injector.still_down)
    return out
