"""Measurement plane of the autoscale controller: roll up ``autoscale.*``.

Everything the controller does — ticks, breach observations, cooldown
holds, committed resizes and the bytes they moved — is booked into
monitor counters as it happens; :func:`autoscale_summary` condenses
them into one deterministic dict for serving summaries and the
autoscale bench, mirroring :func:`repro.metrics.faults.fault_summary`.
"""

from __future__ import annotations

from typing import Dict

from ..sim.monitor import MonitorHub

#: Integer event tallies booked under ``autoscale.<name>``.
AUTOSCALE_COUNTERS = (
    "ticks",
    "breaches",
    "cooldown_holds",
    "scale_ups",
    "scale_downs",
)


def autoscale_summary(monitors: MonitorHub, controller=None) -> Dict[str, object]:
    """Controller tallies plus the committed action log.

    ``controller`` is an optional
    :class:`~repro.serve.autoscale.AutoscaleController`; with one, the
    summary includes the final partition size, the clamp, and every
    committed resize (time, direction, sizes, bytes moved).
    """
    out: Dict[str, object] = {
        name: int(monitors.counter(f"autoscale.{name}").value)
        for name in AUTOSCALE_COUNTERS
    }
    out["moved_bytes"] = int(monitors.counter("autoscale.moved_bytes").value)
    if controller is not None:
        out["active"] = controller.active
        out["clamp"] = [
            controller.policy.min_servers,
            controller.policy.max_servers,
        ]
        out["actions"] = [
            {
                "at": round(a.at, 6),
                "direction": a.direction,
                "from": a.from_servers,
                "to": a.to_servers,
                "moved_bytes": a.moved_bytes,
            }
            for a in controller.actions
        ]
    return out
