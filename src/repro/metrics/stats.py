"""Latency statistics: the summary every serving report quotes.

One canonical implementation of {p50, p95, p99, mean, max} so the
serving layer, the harness and ad-hoc scripts all aggregate latencies
the same way.  Percentiles use the *nearest-rank* definition (no
interpolation): deterministic, exact on small samples, and stable
across NumPy versions — summaries are asserted bit-identical between
runs, so the definition is load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    ``q`` is in (0, 100]; the result is always an element of the input
    (never interpolated).  Empty input returns 0.0.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q!r}")
    rank = -(-int(q * n) // 100)  # ceil(q * n / 100) in integer arithmetic
    return float(sorted_values[max(0, min(n, rank) - 1)])


@dataclass(frozen=True)
class LatencySummary:
    """The standard latency digest: count, mean, tail percentiles, max."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @property
    def row(self) -> Dict[str, float]:
        """Flat dict form for :func:`repro.metrics.report.format_table`."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def latency_summary(values: Iterable[float]) -> LatencySummary:
    """Summarise a collection of latencies (seconds or any unit)."""
    xs: List[float] = sorted(float(v) for v in values)
    if not xs:
        return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
    return LatencySummary(
        count=len(xs),
        mean=sum(xs) / len(xs),
        p50=percentile(xs, 50),
        p95=percentile(xs, 95),
        p99=percentile(xs, 99),
        max=xs[-1],
    )
