"""Critical-path attribution: where each request's latency went.

Given a traced serving run (:class:`~repro.obs.span.Tracer`), decompose
every finished request's arrival-to-settle latency into *stage*
contributions — queued, attempt overhead, fence waits, backoff,
redistribution, normal-path read/compute, offload fan-out RPCs — and
aggregate per-cell time-attribution tables for the benches.

The decomposition is a deepest-span sweep, the flame-graph rule: the
request's root interval is cut at every child-span boundary, and each
segment is attributed to the *deepest* span covering it (ties broken by
latest start, then span id — deterministic).  Segments no child covers
are ``unattributed`` (scheduler bookkeeping between events, plus any
instrumentation gap — the bench's coverage check pins this below 5%).
Because the segments partition the root interval exactly, the per-stage
seconds of a request **sum to its measured latency** by construction;
the bench still asserts the ≤1% acceptance bound end to end.

Batch riders carry a ``shared`` attribute naming the leader's attempt
span: the rider's own attempt has no children (the single fan-out hangs
off the leader), so the sweep follows the link and the shared wall time
is attributed identically for every member of the batch.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "STAGES",
    "RequestAttribution",
    "CriticalPathReport",
    "request_attribution",
    "critical_path",
]

#: Stage order for tables (spans' ``cat`` values, plus the remainder).
STAGES = (
    "queue",
    "attempt",
    "backoff",
    "fence",
    "redistribute",
    "normal",
    "read",
    "compute",
    "offload",
    "rpc",
    "unattributed",
)

#: Root-span outcomes that carry a meaningful latency.
_FINISHED = ("completed", "late")


@dataclass
class RequestAttribution:
    """One request's latency, decomposed."""

    req_id: int
    tenant: str
    outcome: str
    latency: float
    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def attributed(self) -> float:
        """Seconds covered by real spans (everything but the remainder)."""
        return sum(v for k, v in self.stages.items() if k != "unattributed")

    @property
    def coverage(self) -> float:
        """Fraction of the latency the span tree explains."""
        if self.latency <= 0:
            return 1.0
        return self.attributed / self.latency

    @property
    def total(self) -> float:
        return sum(self.stages.values())


def _subtree(root, children: Dict[int, list]) -> List[Tuple[object, int]]:
    """(span, depth) for the request's tree, following rider links."""
    out = []
    stack = [(root, 0)]
    while stack:
        span, depth = stack.pop()
        out.append((span, depth))
        kids = children.get(span.sid, [])
        shared = span.attrs.get("shared")
        if shared is not None and not kids:
            # A batch rider: decompose through the leader's fan-out.
            kids = children.get(shared, [])
        for kid in kids:
            stack.append((kid, depth + 1))
    return out


def request_attribution(
    tracer, req_id: int, _children: Optional[Dict[int, list]] = None
) -> Optional[RequestAttribution]:
    """Decompose one request; ``None`` when it has no closed root span."""
    root = tracer.requests.get(req_id)
    if root is None or root.end is None or root.end < root.start:
        return None
    children = tracer.children_index() if _children is None else _children
    lo0, hi0 = root.start, root.end
    covers = [
        (span, depth)
        for span, depth in _subtree(root, children)
        if depth > 0 and span.end is not None and span.end > span.start
    ]
    bounds = {lo0, hi0}
    for span, _ in covers:
        bounds.add(min(max(span.start, lo0), hi0))
        bounds.add(min(max(span.end, lo0), hi0))
    cuts = sorted(bounds)
    stages: Dict[str, float] = defaultdict(float)
    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        best = None
        for span, depth in covers:
            if span.start <= lo and span.end >= hi:
                key = (depth, span.start, span.sid)
                if best is None or key > best[0]:
                    best = (key, span)
        cat = best[1].cat if best is not None else "unattributed"
        stages[cat] += hi - lo
    return RequestAttribution(
        req_id=req_id,
        tenant=root.attrs.get("tenant", "?"),
        outcome=root.attrs.get("outcome", "?"),
        latency=hi0 - lo0,
        stages=dict(stages),
    )


@dataclass
class CriticalPathReport:
    """Attribution across every sampled request of a run."""

    requests: List[RequestAttribution]

    @property
    def count(self) -> int:
        return len(self.requests)

    def min_coverage(self) -> float:
        """Worst per-request span coverage (1.0 for an empty report)."""
        return min((r.coverage for r in self.requests), default=1.0)

    def max_attribution_error(self) -> float:
        """Largest relative |sum(stages) - latency| over the sample."""
        worst = 0.0
        for r in self.requests:
            if r.latency > 0:
                worst = max(worst, abs(r.total - r.latency) / r.latency)
        return worst

    def stage_seconds(self) -> Dict[str, float]:
        totals: Dict[str, float] = defaultdict(float)
        for r in self.requests:
            for stage, seconds in r.stages.items():
                totals[stage] += seconds
        return dict(totals)

    def table(self) -> List[dict]:
        """Per-stage rows (seconds, share of latency, mean per request)
        for :func:`~repro.metrics.report.format_table`."""
        totals = self.stage_seconds()
        latency_sum = sum(r.latency for r in self.requests)
        rows = []
        order = list(STAGES) + sorted(set(totals) - set(STAGES))
        for stage in order:
            seconds = totals.get(stage, 0.0)
            if seconds == 0.0 and stage not in totals:
                continue
            rows.append(
                {
                    "stage": stage,
                    "seconds": seconds,
                    "share": seconds / latency_sum if latency_sum else 0.0,
                    "mean_s": seconds / self.count if self.count else 0.0,
                }
            )
        return rows

    def per_request_rows(self) -> List[dict]:
        rows = []
        for r in sorted(self.requests, key=lambda r: r.req_id):
            rows.append(
                {
                    "req_id": r.req_id,
                    "tenant": r.tenant,
                    "outcome": r.outcome,
                    "latency_s": r.latency,
                    "coverage": r.coverage,
                    **{
                        f"{stage}_s": r.stages.get(stage, 0.0)
                        for stage in STAGES
                        if any(q.stages.get(stage) for q in self.requests)
                    },
                }
            )
        return rows

    def as_dict(self) -> dict:
        return {
            "requests": self.count,
            "min_coverage": self.min_coverage(),
            "max_attribution_error": self.max_attribution_error(),
            "stages": self.table(),
            "per_request": self.per_request_rows(),
        }


def critical_path(
    tracer, req_ids: Optional[Iterable[int]] = None
) -> CriticalPathReport:
    """Attribution over finished (completed/late) requests.

    ``req_ids`` restricts the sample; by default every registered
    request whose outcome carries a latency is decomposed.
    """
    children = tracer.children_index()
    ids = sorted(req_ids) if req_ids is not None else sorted(tracer.requests)
    out = []
    for req_id in ids:
        root = tracer.requests.get(req_id)
        if root is None or root.attrs.get("outcome") not in _FINISHED:
            continue
        attribution = request_attribution(tracer, req_id, _children=children)
        if attribution is not None:
            out.append(attribution)
    return CriticalPathReport(out)
