"""Measurement utilities: traffic accounting, statistics, reporting."""

from .accounting import TrafficDelta, TrafficMeter, sustained_bandwidth
from .report import format_checks, format_latency_table, format_series, format_table
from .stats import LatencySummary, latency_summary, percentile
from .timeline import Timeline, render_gantt, utilization_table

__all__ = [
    "LatencySummary",
    "Timeline",
    "TrafficDelta",
    "TrafficMeter",
    "format_checks",
    "format_latency_table",
    "format_series",
    "format_table",
    "latency_summary",
    "percentile",
    "render_gantt",
    "sustained_bandwidth",
    "utilization_table",
]
