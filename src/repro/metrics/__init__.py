"""Measurement utilities: traffic accounting, statistics, reporting.

The public surface is pinned by ``__all__`` so ``from repro.metrics
import *`` is well-defined: traffic meters, the canonical nearest-rank
latency statistics, fault/autoscale summaries, the span-projected
:class:`Timeline`, the declared :class:`MetricRegistry` catalog, and
the tracing-backed :func:`critical_path` analyzer.
"""

from .accounting import TrafficDelta, TrafficMeter, sustained_bandwidth
from .autoscale import AUTOSCALE_COUNTERS, autoscale_summary
from .critical_path import (
    STAGES,
    CriticalPathReport,
    RequestAttribution,
    critical_path,
    request_attribution,
)
from .faults import FAULT_COUNTERS, fault_summary
from .registry import CATALOG, Histogram, MetricRegistry, MetricSpec, catalog_lookup
from .report import format_checks, format_latency_table, format_series, format_table
from .stats import LatencySummary, latency_summary, percentile
from .timeline import Timeline, render_gantt, utilization_table

__all__ = [
    "AUTOSCALE_COUNTERS",
    "CATALOG",
    "CriticalPathReport",
    "FAULT_COUNTERS",
    "Histogram",
    "LatencySummary",
    "MetricRegistry",
    "MetricSpec",
    "RequestAttribution",
    "STAGES",
    "Timeline",
    "TrafficDelta",
    "TrafficMeter",
    "autoscale_summary",
    "catalog_lookup",
    "critical_path",
    "fault_summary",
    "format_checks",
    "format_latency_table",
    "format_series",
    "format_table",
    "latency_summary",
    "percentile",
    "render_gantt",
    "request_attribution",
    "sustained_bandwidth",
    "utilization_table",
]
