"""Measurement utilities: traffic accounting, statistics, reporting."""

from .accounting import TrafficDelta, TrafficMeter, sustained_bandwidth
from .report import format_checks, format_series, format_table
from .timeline import Timeline, render_gantt, utilization_table

__all__ = [
    "Timeline",
    "TrafficDelta",
    "TrafficMeter",
    "format_checks",
    "format_series",
    "format_table",
    "render_gantt",
    "sustained_bandwidth",
    "utilization_table",
]
