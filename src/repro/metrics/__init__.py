"""Measurement utilities: traffic accounting, statistics, reporting."""

from .accounting import TrafficDelta, TrafficMeter, sustained_bandwidth
from .autoscale import AUTOSCALE_COUNTERS, autoscale_summary
from .faults import FAULT_COUNTERS, fault_summary
from .report import format_checks, format_latency_table, format_series, format_table
from .stats import LatencySummary, latency_summary, percentile
from .timeline import Timeline, render_gantt, utilization_table

__all__ = [
    "AUTOSCALE_COUNTERS",
    "FAULT_COUNTERS",
    "LatencySummary",
    "Timeline",
    "TrafficDelta",
    "TrafficMeter",
    "autoscale_summary",
    "fault_summary",
    "format_checks",
    "format_latency_table",
    "format_series",
    "format_table",
    "latency_summary",
    "percentile",
    "render_gantt",
    "sustained_bandwidth",
    "utilization_table",
]
