"""Ring-buffer time series: the sampler's in-memory storage.

One :class:`Series` per metric name per scope, holding at most
``capacity`` ``(time, value)`` points in a ring (oldest points are
overwritten once the ring is full; ``dropped`` counts them).  Three
kinds, matching how the sampler scrapes each metric family:

* ``counter`` — the point value is the **increase** over the sampling
  interval that ended at the point's boundary (rate = value / interval).
  ``cumulative`` keeps the running total so windowed sums survive ring
  wrap-around arithmetic, and ``last_activity`` records the newest
  boundary with a positive increase (the absence-rule signal).
* ``gauge`` — the level at the boundary instant.
* ``quantile`` — a windowed latency statistic (p50/p99/count over the
  histogram observations that landed inside the interval).

Everything here is plain floats appended at simulated-clock boundaries,
so a replay reproduces every point bit-identically.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["KINDS", "Series", "SeriesBank"]

#: The series kinds the sampler emits.
KINDS = ("counter", "gauge", "quantile")

#: Slack for float boundary comparisons (boundaries are k * interval).
_EPS = 1e-9


class Series:
    """A fixed-capacity ring of ``(time, value)`` samples."""

    __slots__ = ("name", "kind", "capacity", "dropped", "cumulative",
                 "last_activity", "_ring")

    def __init__(self, name: str, kind: str, capacity: int = 512):
        if kind not in KINDS:
            raise SimulationError(f"unknown series kind {kind!r}")
        if capacity < 2:
            raise SimulationError(f"series capacity must be >= 2, got {capacity}")
        self.name = name
        self.kind = kind
        self.capacity = capacity
        self.dropped = 0
        self.cumulative = 0.0
        self.last_activity: Optional[float] = None
        self._ring: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    def append(self, t: float, value: float) -> None:
        ring = self._ring
        if ring and t <= ring[-1][0]:
            raise SimulationError(
                f"series {self.name!r}: non-monotone append at t={t!r}"
            )
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append((t, value))
        if self.kind == "counter":
            self.cumulative += value
            if value > 0:
                self.last_activity = t

    def points(self) -> List[Tuple[float, float]]:
        """Oldest-to-newest retained points."""
        return list(self._ring)

    def last(self) -> Optional[Tuple[float, float]]:
        return self._ring[-1] if self._ring else None

    def window(self, t: float, width: float) -> List[Tuple[float, float]]:
        """Retained points with time in ``(t - width, t]``."""
        lo = t - width + _EPS
        out = [p for p in reversed(self._ring) if p[0] >= lo and p[0] <= t + _EPS]
        out.reverse()
        return out

    def window_sum(self, t: float, width: float) -> float:
        """Sum of point values over ``(t - width, t]`` (counter kind:
        the total increase inside the window)."""
        lo = t - width + _EPS
        total = 0.0
        for pt, pv in reversed(self._ring):
            if pt > t + _EPS:
                continue
            if pt < lo:
                break
            total += pv
        return total

    def at_or_before(self, t: float) -> Optional[float]:
        """Value of the newest retained point with time ``<= t``."""
        for pt, pv in reversed(self._ring):
            if pt <= t + _EPS:
                return pv
        return None


class SeriesBank:
    """All series of one scrape scope, keyed by metric name."""

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self.series: Dict[str, Series] = {}

    def get(self, name: str) -> Optional[Series]:
        return self.series.get(name)

    def series_for(self, name: str, kind: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = Series(name, kind, capacity=self.capacity)
            self.series[name] = s
        elif s.kind != kind:
            raise SimulationError(
                f"series {name!r} already registered as {s.kind!r}, not {kind!r}"
            )
        return s

    def window_sum(self, names: Iterable[str], t: float, width: float) -> float:
        """Summed windowed increase across several counter series
        (absent series contribute 0 — the metric was never booked)."""
        total = 0.0
        for name in names:
            s = self.series.get(name)
            if s is not None:
                total += s.window_sum(t, width)
        return total

    def __len__(self) -> int:
        return len(self.series)
