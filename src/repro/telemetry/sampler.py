"""The clock-driven sampler: MonitorHub scrapes into ring-buffer series.

A :class:`TelemetrySampler` attaches to the environment's dispatch loop
(:meth:`repro.sim.core.Environment.set_telemetry`) and is fired the
first time an event at or past the next sampling boundary is popped,
*before* the clock advances — so the sample at boundary ``b`` observes
the system exactly as it stands at ``b`` (state is constant between
events).  Boundaries are ``tick * interval`` with an integer tick, so
no float accumulation can drift the grid, and a trailing
:meth:`finalize` flushes the boundaries between the last event and the
horizon from the final state.

The non-perturbation contract matches the tracer's: the sampler never
creates events, processes or timeouts — it only reads counter values,
gauge levels and histogram sample lists, and appends to Python-side
ring buffers — so the event stream, per-request CRCs and every summary
field are bit-identical with sampling on or off.  (It *does* book its
own ``telemetry.*`` / ``alert.*`` meta-metrics into the hub it scrapes;
summaries read named metrics, so extra bookings are invisible to them.)

Per scope (one serving cell, or the fleet hub) each scrape emits:

* every hub counter matching the scrape prefixes → a ``counter`` series
  of per-interval increases,
* every matching gauge → a ``gauge`` series of levels,
* every matching registry histogram → ``<name>.win_p50`` /
  ``<name>.win_p99`` / ``<name>.win_count`` quantile series over the
  observations that landed inside the interval,

then runs the scope's :class:`~repro.telemetry.alerts.AlertEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..metrics.stats import latency_summary
from .alerts import AlertEngine, AlertRule
from .series import SeriesBank

__all__ = ["SCRAPE_PREFIXES", "TelemetryConfig", "TelemetrySampler"]

#: Metric-name prefixes scraped into series.  Deliberately the
#: health-relevant families, not the per-owner device/network tallies —
#: a per-NIC byte counter per node would swamp the artifact without
#: adding an alertable signal.
SCRAPE_PREFIXES = (
    "serve.",
    "fleet.",
    "faults.",
    "autoscale.",
    "telemetry.",
    "alert.",
)

_EPS = 1e-9


@dataclass(frozen=True)
class TelemetryConfig:
    """How a system under test wires its sampler.

    ``rules=None`` means the scope-appropriate default rule set
    (:func:`~repro.telemetry.alerts.default_serve_rules` for a serving
    cell, :func:`~repro.telemetry.alerts.default_fleet_rules` for the
    fleet hub); an explicit tuple overrides it, and ``()`` disables
    alerting while keeping the series.
    """

    interval: float = 0.25
    capacity: int = 512
    rules: Optional[Tuple[AlertRule, ...]] = None
    prefixes: Tuple[str, ...] = SCRAPE_PREFIXES

    def validate(self) -> None:
        if self.interval <= 0:
            raise SimulationError(
                f"telemetry interval must be > 0, got {self.interval!r}"
            )
        if self.capacity < 2:
            raise SimulationError(
                f"telemetry capacity must be >= 2, got {self.capacity!r}"
            )


class _Scope:
    """One scrape target: a MonitorHub (and optionally its registry)."""

    __slots__ = ("label", "monitors", "registry", "bank", "engine",
                 "_prev_counters", "_prev_hist")

    def __init__(self, label, monitors, registry, bank, engine):
        self.label = label
        self.monitors = monitors
        self.registry = registry
        self.bank = bank
        self.engine = engine
        self._prev_counters: Dict[str, float] = {}
        self._prev_hist: Dict[str, int] = {}
        # Create the meta-counter up front so booking it during the
        # scrape never mutates the counter dict mid-iteration.
        monitors.counter("telemetry.samples")

    def sample(self, t: float, prefixes: Tuple[str, ...]) -> None:
        monitors = self.monitors
        bank = self.bank
        monitors.counter("telemetry.samples").add()
        for name, counter in monitors.counters.items():
            if not name.startswith(prefixes):
                continue
            value = counter.value
            delta = value - self._prev_counters.get(name, 0.0)
            self._prev_counters[name] = value
            bank.series_for(name, "counter").append(t, delta)
        for name, gauge in monitors.gauges.items():
            if name.startswith(prefixes):
                bank.series_for(name, "gauge").append(t, gauge.level)
        if self.registry is not None:
            for name, hist in self.registry.histograms.items():
                if not name.startswith(prefixes):
                    continue
                samples = hist.samples
                start = self._prev_hist.get(name, 0)
                self._prev_hist[name] = len(samples)
                digest = latency_summary(samples[start:])
                bank.series_for(name + ".win_p50", "quantile").append(t, digest.p50)
                bank.series_for(name + ".win_p99", "quantile").append(t, digest.p99)
                bank.series_for(name + ".win_count", "quantile").append(
                    t, float(digest.count)
                )
        if self.engine is not None:
            self.engine.evaluate(t)
        monitors.gauge("telemetry.series").set(float(len(bank)))


class TelemetrySampler:
    """Scrapes every registered scope at each ``tick * interval``."""

    def __init__(self, env, config: Optional[TelemetryConfig] = None):
        config = config or TelemetryConfig()
        config.validate()
        self.env = env
        self.config = config
        self.interval = float(config.interval)
        self.scopes: List[_Scope] = []
        self._tick = 0  # samples taken; next boundary is (tick + 1) * interval
        self._attached = False
        self._finalized_at: Optional[float] = None

    # -- wiring -----------------------------------------------------------------
    def add_scope(
        self, label, monitors, registry=None, rules=(), active_until=None
    ) -> _Scope:
        if any(s.label == label for s in self.scopes):
            raise SimulationError(f"duplicate telemetry scope {label!r}")
        bank = SeriesBank(capacity=self.config.capacity)
        engine = None
        if rules:
            engine = AlertEngine(
                label, tuple(rules), bank, monitors=monitors,
                active_until=active_until,
            )
        scope = _Scope(label, monitors, registry, bank, engine)
        self.scopes.append(scope)
        return scope

    def attach(self) -> None:
        """Arm the dispatch-loop boundary check."""
        if self._attached:
            raise SimulationError("sampler already attached")
        self.env.set_telemetry(self._fire, (self._tick + 1) * self.interval)
        self._attached = True

    # -- the dispatch-loop callback ---------------------------------------------
    def _fire(self, when: float) -> None:
        # Flush every boundary at or before the event about to dispatch;
        # state is constant since the previous event, so each boundary
        # observes exactly the state it would have seen live.
        interval = self.interval
        nxt = (self._tick + 1) * interval
        while nxt <= when:
            self._sample(nxt)
            nxt = (self._tick + 1) * interval
        self.env._telemetry_next = nxt

    def _sample(self, t: float) -> None:
        prefixes = self.config.prefixes
        for scope in self.scopes:
            scope.sample(t, prefixes)
        self._tick += 1

    # -- lifecycle --------------------------------------------------------------
    def finalize(self, horizon: float) -> None:
        """Flush trailing boundaries up to ``horizon`` and detach."""
        if self._finalized_at is not None:
            return
        nxt = (self._tick + 1) * self.interval
        while nxt <= horizon + _EPS:
            self._sample(nxt)
            nxt = (self._tick + 1) * self.interval
        if self._attached:
            self.env.clear_telemetry()
            self._attached = False
        self._finalized_at = float(horizon)

    # -- reporting --------------------------------------------------------------
    @property
    def samples(self) -> int:
        return self._tick

    def summary_block(self) -> Dict[str, object]:
        """The deterministic ``summary["telemetry"]`` block."""
        scopes: Dict[str, object] = {}
        for scope in self.scopes:
            block: Dict[str, object] = {
                "series": len(scope.bank),
                "dropped": sum(s.dropped for s in scope.bank.series.values()),
            }
            if scope.engine is not None:
                block["alerts"] = {
                    "fired": scope.engine.fired_rules(),
                    "resolved": scope.engine.resolved_rules(),
                    "ledger": [dict(e) for e in scope.engine.ledger],
                }
            scopes[scope.label] = block
        return {
            "interval": self.interval,
            "samples": self._tick,
            "scopes": scopes,
        }

    def payload(self, label: str, meta: Optional[dict] = None) -> Dict[str, object]:
        """The ``<cell>.telemetry.json`` artifact document."""
        scopes: Dict[str, object] = {}
        for scope in self.scopes:
            series = {
                name: {
                    "kind": s.kind,
                    "dropped": s.dropped,
                    "points": [[t, v] for t, v in s.points()],
                }
                for name, s in sorted(scope.bank.series.items())
            }
            block: Dict[str, object] = {"series": series}
            if scope.engine is not None:
                block["alerts"] = {
                    "rules": [r.to_dict() for r in scope.engine.rules],
                    "ledger": [dict(e) for e in scope.engine.ledger],
                }
            scopes[scope.label] = block
        doc: Dict[str, object] = {
            "schema": "repro.telemetry/1",
            "label": label,
            "interval": self.interval,
            "samples": self._tick,
            "horizon": self._finalized_at,
            "scopes": scopes,
        }
        if meta:
            doc["meta"] = dict(meta)
        return doc
