"""Live telemetry: clock-driven sampling, time-series, SLO alerting.

The layer between per-request tracing (:mod:`repro.obs`) and the
post-hoc report (:mod:`repro.report`): a sampler that scrapes every
MonitorHub into ring-buffer time-series while the simulation runs, and
an alert engine that evaluates declarative SLO rules (multi-window
burn-rate, threshold, absence, rate-of-change) over those series on the
simulated clock.  Sampling is provably non-perturbing — event stream
and per-request CRCs are bit-identical with it on or off — and the
alert ledger is deterministic across replays.
"""

from .alerts import (
    RULE_KINDS,
    AlertEngine,
    AlertRule,
    default_fleet_rules,
    default_serve_rules,
)
from .sampler import SCRAPE_PREFIXES, TelemetryConfig, TelemetrySampler
from .series import KINDS, Series, SeriesBank

__all__ = [
    "KINDS",
    "RULE_KINDS",
    "SCRAPE_PREFIXES",
    "AlertEngine",
    "AlertRule",
    "Series",
    "SeriesBank",
    "TelemetryConfig",
    "TelemetrySampler",
    "default_fleet_rules",
    "default_serve_rules",
]
