"""Declarative alert rules evaluated on the simulated clock.

Four predicate kinds, the same vocabulary production alerting stacks
use, all reading the sampler's ring-buffer series and nothing else:

* ``burn_rate`` — the multi-window SLO burn rate.  Over a window ``W``
  ending at boundary ``t`` the burn is
  ``(bad increase / total increase) / (1 - objective)``; the rule fires
  only when **both** the fast and the slow window burn at or above
  ``factor`` (the fast window catches the onset, the slow window keeps
  a blip from paging).
* ``threshold`` — a gauge level (or, with ``window`` set, a counter's
  windowed rate) compared against ``value`` with ``op``.
* ``absence`` — a counter has shown no increase for ``duration``
  seconds (a heartbeat/stall detector).
* ``rate_of_change`` — a gauge's slope over ``window`` seconds compared
  against ``value`` with ``op``.

On top of the predicate sits a deterministic state machine: the
condition must hold continuously for ``for_duration`` before the alert
**fires**, and must be continuously clear for ``clear_for`` before it
**resolves** (hysteresis, so a flapping predicate books one incident,
not many).  Every transition lands in an append-only ledger of
``{rule, scope, severity, fired_at, resolved_at}`` entries — simulated
instants, so a replay reproduces the ledger bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from .series import SeriesBank

__all__ = [
    "RULE_KINDS",
    "AlertRule",
    "AlertEngine",
    "default_serve_rules",
    "default_fleet_rules",
]

RULE_KINDS = ("burn_rate", "threshold", "absence", "rate_of_change")

_OPS = (">", "<")

#: Slack for "held for duration" comparisons on k * interval boundaries.
_EPS = 1e-9


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; only the fields of its ``kind`` are read."""

    name: str
    kind: str
    severity: str = "page"
    # burn_rate: counter series summed into the bad / total windowed rates.
    bad: Tuple[str, ...] = ()
    total: Tuple[str, ...] = ()
    objective: float = 0.99
    factor: float = 2.0
    fast: float = 0.5
    slow: float = 2.0
    # threshold / rate_of_change target series and comparison.
    series: str = ""
    op: str = ">"
    value: float = 0.0
    window: float = 0.0
    # absence: seconds without a counter increase.
    duration: float = 1.0
    # state-machine hold-downs.
    for_duration: float = 0.0
    clear_for: float = 0.5

    def validate(self) -> None:
        if self.kind not in RULE_KINDS:
            raise SimulationError(f"rule {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "burn_rate":
            if not self.bad or not self.total:
                raise SimulationError(
                    f"rule {self.name!r}: burn_rate needs bad and total series"
                )
            if not 0.0 < self.objective < 1.0:
                raise SimulationError(
                    f"rule {self.name!r}: objective must be in (0, 1)"
                )
            if self.fast <= 0 or self.slow < self.fast:
                raise SimulationError(
                    f"rule {self.name!r}: need 0 < fast <= slow windows"
                )
        else:
            if not self.series:
                raise SimulationError(f"rule {self.name!r}: needs a series name")
            if self.kind in ("threshold", "rate_of_change") and self.op not in _OPS:
                raise SimulationError(f"rule {self.name!r}: unknown op {self.op!r}")
            if self.kind == "rate_of_change" and self.window <= 0:
                raise SimulationError(
                    f"rule {self.name!r}: rate_of_change needs window > 0"
                )
            if self.kind == "absence" and self.duration <= 0:
                raise SimulationError(
                    f"rule {self.name!r}: absence needs duration > 0"
                )

    def to_dict(self) -> Dict[str, object]:
        """The artifact form: the kind's own fields plus hold-downs."""
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "severity": self.severity,
            "for_duration": self.for_duration,
            "clear_for": self.clear_for,
        }
        if self.kind == "burn_rate":
            out.update(
                bad=list(self.bad),
                total=list(self.total),
                objective=self.objective,
                factor=self.factor,
                fast=self.fast,
                slow=self.slow,
            )
        elif self.kind == "absence":
            out.update(series=self.series, duration=self.duration)
        else:
            out.update(series=self.series, op=self.op, value=self.value)
            if self.window:
                out["window"] = self.window
        return out


class AlertEngine:
    """Evaluates one scope's rules at every sampling boundary."""

    def __init__(
        self,
        scope: str,
        rules: Tuple[AlertRule, ...],
        bank: SeriesBank,
        monitors=None,
        active_until: Optional[float] = None,
    ):
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate alert rule names in scope {scope!r}")
        for rule in rules:
            rule.validate()
        self.scope = scope
        self.rules = tuple(rules)
        self.bank = bank
        self.monitors = monitors
        #: Instant after which *absence* rules stop asserting: offered
        #: load deliberately ends at the workload horizon, so a silent
        #: counter during the drain is quiescence, not a stall.
        self.active_until = active_until
        self.ledger: List[Dict[str, object]] = []
        self._pending: Dict[str, float] = {}
        self._clear: Dict[str, float] = {}
        self._open: Dict[str, Dict[str, object]] = {}

    # -- predicates -------------------------------------------------------------
    def burn(self, rule: AlertRule, t: float, width: float) -> float:
        """The burn rate over the window of ``width`` ending at ``t``."""
        total = self.bank.window_sum(rule.total, t, width)
        if total <= 0:
            return 0.0
        frac = self.bank.window_sum(rule.bad, t, width) / total
        return frac / (1.0 - rule.objective)

    def _compare(self, rule: AlertRule, value: float) -> bool:
        return value > rule.value if rule.op == ">" else value < rule.value

    def _predicate(self, rule: AlertRule, t: float) -> bool:
        kind = rule.kind
        if kind == "burn_rate":
            return (
                self.burn(rule, t, rule.fast) >= rule.factor - _EPS
                and self.burn(rule, t, rule.slow) >= rule.factor - _EPS
            )
        s = self.bank.get(rule.series)
        if kind == "absence":
            if self.active_until is not None and t > self.active_until + _EPS:
                return False
            # A never-booked series counts as silent since t=0.
            last = s.last_activity if s is not None else None
            return t - (last if last is not None else 0.0) >= rule.duration - _EPS
        if s is None:
            return False
        if kind == "threshold":
            if rule.window > 0:
                value = s.window_sum(t, rule.window) / rule.window
            else:
                point = s.last()
                if point is None:
                    return False
                value = point[1]
            return self._compare(rule, value)
        # rate_of_change: slope of a gauge over the trailing window.
        point = s.last()
        then = s.at_or_before(t - rule.window)
        if point is None or then is None:
            return False
        return self._compare(rule, (point[1] - then) / rule.window)

    # -- the state machine ------------------------------------------------------
    def evaluate(self, t: float) -> None:
        fired = resolved = 0
        for rule in self.rules:
            active = self._predicate(rule, t)
            entry = self._open.get(rule.name)
            if entry is None:
                if not active:
                    self._pending.pop(rule.name, None)
                    continue
                since = self._pending.setdefault(rule.name, t)
                if t - since >= rule.for_duration - _EPS:
                    entry = {
                        "rule": rule.name,
                        "scope": self.scope,
                        "severity": rule.severity,
                        "fired_at": t,
                        "resolved_at": None,
                    }
                    self._open[rule.name] = entry
                    self.ledger.append(entry)
                    self._pending.pop(rule.name, None)
                    fired += 1
            elif active:
                self._clear.pop(rule.name, None)
            else:
                since = self._clear.setdefault(rule.name, t)
                if t - since >= rule.clear_for - _EPS:
                    entry["resolved_at"] = t
                    del self._open[rule.name]
                    self._clear.pop(rule.name, None)
                    resolved += 1
        if self.monitors is not None:
            if fired:
                self.monitors.counter("alert.fired").add(fired)
            if resolved:
                self.monitors.counter("alert.resolved").add(resolved)
            self.monitors.gauge("alert.active").set(float(len(self._open)))

    # -- reporting --------------------------------------------------------------
    @property
    def active(self) -> Tuple[str, ...]:
        """Names of the rules firing right now (deterministic order)."""
        return tuple(sorted(self._open))

    def fired_rules(self) -> List[str]:
        return sorted({str(e["rule"]) for e in self.ledger})

    def resolved_rules(self) -> List[str]:
        return sorted(
            {str(e["rule"]) for e in self.ledger if e["resolved_at"] is not None}
        )


#: Every terminal request outcome the SLO board books.
_OUTCOMES = ("serve.completed", "serve.late", "serve.expired", "serve.failed")


def default_serve_rules() -> Tuple[AlertRule, ...]:
    """The stock rule set for one serving cell.

    The two burn-rate pairs implement the SRE multi-window recipe over
    the SLO board's outcome counters: ``availability-burn`` spends the
    1% hard-failure budget (expired + failed), ``latency-burn`` the 10%
    deadline budget (late counts too).  The remaining rules cover the
    other predicate kinds: an admission heartbeat, queue saturation and
    queue growth-rate on the admission-depth gauge.
    """
    return (
        AlertRule(
            name="availability-burn",
            kind="burn_rate",
            severity="page",
            bad=("serve.expired", "serve.failed"),
            total=_OUTCOMES,
            objective=0.99,
            factor=2.0,
            fast=0.5,
            slow=2.0,
            for_duration=0.25,
            clear_for=0.5,
        ),
        AlertRule(
            name="latency-burn",
            kind="burn_rate",
            severity="page",
            bad=("serve.late", "serve.expired", "serve.failed"),
            total=_OUTCOMES,
            objective=0.90,
            factor=1.0,
            fast=0.5,
            slow=2.0,
            for_duration=0.25,
            clear_for=0.5,
        ),
        AlertRule(
            name="failover-surge",
            kind="threshold",
            severity="ticket",
            series="faults.failover_reads",
            op=">",
            value=0.0,
            window=0.5,
            clear_for=0.25,
        ),
        AlertRule(
            name="admission-stall",
            kind="absence",
            severity="ticket",
            series="serve.admitted",
            duration=1.5,
            clear_for=0.0,
        ),
        AlertRule(
            name="queue-saturated",
            kind="threshold",
            severity="ticket",
            series="serve.queue.depth",
            op=">",
            value=10.0,
            for_duration=0.5,
            clear_for=0.5,
        ),
        AlertRule(
            name="queue-growth",
            kind="rate_of_change",
            severity="ticket",
            series="serve.queue.depth",
            op=">",
            value=8.0,
            window=1.0,
            for_duration=0.25,
            clear_for=0.5,
        ),
    )


def default_fleet_rules(n_cells: int) -> Tuple[AlertRule, ...]:
    """The stock rule set for the fleet scope (router + controller hub)."""
    return (
        AlertRule(
            name="fleet-unhealthy",
            kind="threshold",
            severity="page",
            series="fleet.cells_healthy",
            op="<",
            value=float(n_cells),
            for_duration=0.25,
            clear_for=0.25,
        ),
        AlertRule(
            name="fleet-spillover",
            kind="threshold",
            severity="ticket",
            series="fleet.spillovers",
            op=">",
            value=0.0,
            window=1.0,
            clear_for=0.5,
        ),
        AlertRule(
            name="routing-stall",
            kind="absence",
            severity="page",
            series="fleet.routed",
            duration=1.5,
            clear_for=0.0,
        ),
    )
