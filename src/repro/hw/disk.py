"""Disk model: positioning time + streaming bandwidth, one arm.

Each storage node owns one :class:`Disk`.  An I/O charges one seek
(positioning) plus ``size / bandwidth`` of streaming time, serialised
with other I/Os on the same disk.  Sequential batching is therefore
rewarded — issuing one large read is cheaper than many small ones,
matching the real systems the paper builds on.
"""

from __future__ import annotations

from ..config import PlatformSpec
from ..errors import SimulationError
from ..sim import Environment, Resource
from ..sim.events import Event, Timeout
from ..sim.monitor import MonitorHub
from ..sim.resources import Request


class Disk:
    """One disk (arm + platters) attached to a storage node."""

    def __init__(
        self,
        env: Environment,
        owner: str,
        spec: PlatformSpec,
        monitors: MonitorHub,
    ):
        if spec.disk_bandwidth <= 0:
            raise SimulationError("disk bandwidth must be positive")
        self.env = env
        self.owner = owner
        self.bandwidth = float(spec.disk_bandwidth)
        self.seek = float(spec.disk_seek)
        self.monitors = monitors
        self.arm = Resource(env, capacity=1)
        #: Throughput multiplier in (0, 1]; < 1 models a degraded disk
        #: (failing sectors, RAID rebuild).  Set via :meth:`degrade`.
        self._health = 1.0
        # Lazily-bound (per-disk, per-op-total) counter pairs; created
        # at first use so hub creation order matches uncached lookups.
        self._op_counters: dict = {}

    @property
    def health(self) -> float:
        return self._health

    def degrade(self, factor: float) -> None:
        """Scale streaming throughput by ``factor`` (fault injection)."""
        if not 0.0 < factor <= 1.0:
            raise SimulationError(
                f"disk degradation factor must be in (0, 1], got {factor!r}"
            )
        self._health = float(factor)

    def restore(self) -> None:
        """Return the disk to full throughput."""
        self._health = 1.0

    def io_seconds(self, size: float) -> float:
        return self.seek + size / (self.bandwidth * self._health)

    def read(self, size: float):
        """Event: read ``size`` bytes (seek + stream); value is ``size``."""
        return self._io(size, "read")

    def write(self, size: float):
        """Event: write ``size`` bytes (seek + stream); value is ``size``."""
        return self._io(size, "write")

    def _io(self, size: float, op: str) -> Event:
        # Hand-built event chain (grant -> service timeout -> release)
        # instead of a generator process: one I/O costs three scheduled
        # events, not four plus generator machinery.  Push order within
        # the completion instant — next-waiter grant, booking, then the
        # done event — matches the old `with request(): yield timeout`
        # form exactly, so event streams are unchanged.
        if size < 0:
            raise SimulationError(f"negative I/O size {size!r}")
        env = self.env
        done = Event(env)
        arm = self.arm

        def on_grant(_e: Event) -> None:
            # Duration is priced at grant time: health may have changed
            # (fault injection) while the request sat in the arm queue.
            seconds = self.io_seconds(size)

            def on_fire(_e: Event) -> None:
                arm.release(req)
                counters = self._op_counters.get(op)
                if counters is None:
                    monitors = self.monitors
                    counters = self._op_counters[op] = (
                        monitors.counter(f"disk.{op}.{self.owner}"),
                        monitors.counter(f"disk.{op}_total"),
                    )
                counters[0].add(size)
                counters[1].add(size)
                monitors = self.monitors
                if monitors.trace_enabled:
                    monitors.log(
                        "disk", f"{self.owner}:{op}", seconds=seconds, size=size
                    )
                done.succeed(size)

            timer = Timeout(env, seconds)
            timer.callbacks.append(on_fire)

        req = Request(arm)
        req.callbacks.append(on_grant)
        return done
