"""Disk model: positioning time + streaming bandwidth, one arm.

Each storage node owns one :class:`Disk`.  An I/O charges one seek
(positioning) plus ``size / bandwidth`` of streaming time, serialised
with other I/Os on the same disk.  Sequential batching is therefore
rewarded — issuing one large read is cheaper than many small ones,
matching the real systems the paper builds on.
"""

from __future__ import annotations

from ..config import PlatformSpec
from ..errors import SimulationError
from ..sim import Environment, Resource
from ..sim.monitor import MonitorHub


class Disk:
    """One disk (arm + platters) attached to a storage node."""

    def __init__(
        self,
        env: Environment,
        owner: str,
        spec: PlatformSpec,
        monitors: MonitorHub,
    ):
        if spec.disk_bandwidth <= 0:
            raise SimulationError("disk bandwidth must be positive")
        self.env = env
        self.owner = owner
        self.bandwidth = float(spec.disk_bandwidth)
        self.seek = float(spec.disk_seek)
        self.monitors = monitors
        self.arm = Resource(env, capacity=1)
        #: Throughput multiplier in (0, 1]; < 1 models a degraded disk
        #: (failing sectors, RAID rebuild).  Set via :meth:`degrade`.
        self._health = 1.0

    @property
    def health(self) -> float:
        return self._health

    def degrade(self, factor: float) -> None:
        """Scale streaming throughput by ``factor`` (fault injection)."""
        if not 0.0 < factor <= 1.0:
            raise SimulationError(
                f"disk degradation factor must be in (0, 1], got {factor!r}"
            )
        self._health = float(factor)

    def restore(self) -> None:
        """Return the disk to full throughput."""
        self._health = 1.0

    def io_seconds(self, size: float) -> float:
        return self.seek + size / (self.bandwidth * self._health)

    def read(self, size: float):
        """Process: read ``size`` bytes (seek + stream)."""
        return self.env.process(self._io(size, "read"), name=f"disk:{self.owner}:read")

    def write(self, size: float):
        """Process: write ``size`` bytes (seek + stream)."""
        return self.env.process(self._io(size, "write"), name=f"disk:{self.owner}:write")

    def _io(self, size: float, op: str):
        if size < 0:
            raise SimulationError(f"negative I/O size {size!r}")
        with self.arm.request() as req:
            yield req
            seconds = self.io_seconds(size)
            yield self.env.timeout(seconds)
        self.monitors.counter(f"disk.{op}.{self.owner}").add(size)
        self.monitors.counter(f"disk.{op}_total").add(size)
        self.monitors.log("disk", f"{self.owner}:{op}", seconds=seconds, size=size)
        return size
