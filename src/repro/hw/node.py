"""Cluster node: a named bundle of NIC + CPU (+ disk for storage nodes)."""

from __future__ import annotations

from typing import Optional

from ..config import PlatformSpec
from ..errors import SimulationError
from ..net.nic import NIC
from ..sim import Environment
from ..sim.monitor import MonitorHub
from .cpu import CPU
from .disk import Disk

KIND_COMPUTE = "compute"
KIND_STORAGE = "storage"


class Node:
    """One simulated machine.

    Storage nodes carry a disk; compute nodes do not (they read and
    write through the parallel file system like the paper's clients).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        kind: str,
        spec: PlatformSpec,
        monitors: MonitorHub,
    ):
        if kind not in (KIND_COMPUTE, KIND_STORAGE):
            raise SimulationError(f"unknown node kind {kind!r}")
        self.env = env
        self.name = name
        self.kind = kind
        self.spec = spec
        self.monitors = monitors
        self.nic = NIC(env, name, spec.nic_bandwidth, spec.nic_latency, monitors)
        self.cpu = CPU(env, name, spec, monitors)
        self.disk: Optional[Disk] = (
            Disk(env, name, spec, monitors) if kind == KIND_STORAGE else None
        )

    @property
    def is_storage(self) -> bool:
        return self.kind == KIND_STORAGE

    @property
    def is_compute(self) -> bool:
        return self.kind == KIND_COMPUTE

    # -- failure injection ----------------------------------------------------
    def fail(self) -> None:
        """Take the node offline: subsequent transfers to it fail."""
        self.nic.bring_down()

    def recover(self) -> None:
        self.nic.bring_up()

    @property
    def is_up(self) -> bool:
        return self.nic.is_up

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} ({self.kind})>"
