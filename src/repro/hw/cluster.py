"""Cluster builder: environment + fabric + nodes in one object.

This is the root object experiments construct first::

    cluster = Cluster.build(n_compute=12, n_storage=12)
    ... attach a PFS, run schemes ...
    cluster.run()

The node partition mirrors the paper's testbed: storage nodes are
deployed separately from compute nodes ("the first model", Section
III-A), connected by a switched fabric.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import PlatformSpec, SimConfig
from ..errors import SimulationError
from ..net import Collectives, Fabric, Transport
from ..sim import Environment, MonitorHub, RandomStreams
from .node import KIND_COMPUTE, KIND_STORAGE, Node


class Cluster:
    """A simulated cluster: nodes, fabric, transport and monitors."""

    def __init__(
        self,
        env: Environment,
        spec: PlatformSpec,
        sim_config: SimConfig,
        monitors: MonitorHub,
    ):
        self.env = env
        self.spec = spec
        self.sim_config = sim_config
        self.monitors = monitors
        self.rand = RandomStreams(sim_config.seed)
        self.fabric = Fabric(env, flow_limit=spec.fabric_flow_limit)
        if spec.bisection_bandwidth > 0:
            self.fabric.set_bisection_bandwidth(spec.bisection_bandwidth)
        self.transport = Transport(env, self.fabric, monitors, spec.rpc_overhead)
        self.collectives = Collectives(self.transport)
        self._nodes: Dict[str, Node] = {}

    # -- construction -----------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_compute: int,
        n_storage: int,
        spec: Optional[PlatformSpec] = None,
        sim_config: Optional[SimConfig] = None,
        env: Optional[Environment] = None,
    ) -> "Cluster":
        """Create a cluster with ``n_compute`` compute nodes (named
        ``c0..``) and ``n_storage`` storage nodes (named ``s0..``).

        ``env`` lets several clusters share one simulation clock (the
        fleet layer builds N cells on a single :class:`Environment`);
        when omitted each cluster gets its own fresh environment.
        """
        if n_compute < 0 or n_storage <= 0:
            raise SimulationError(
                f"need >= 0 compute and >= 1 storage nodes, got {n_compute}/{n_storage}"
            )
        spec = spec or PlatformSpec()
        sim_config = sim_config or SimConfig()
        env = env if env is not None else Environment()
        monitors = MonitorHub(env, trace=sim_config.trace)
        cluster = cls(env, spec, sim_config, monitors)
        for i in range(n_compute):
            cluster.add_node(f"c{i}", KIND_COMPUTE)
        for i in range(n_storage):
            cluster.add_node(f"s{i}", KIND_STORAGE)
        return cluster

    def add_node(self, name: str, kind: str) -> Node:
        if name in self._nodes:
            raise SimulationError(f"node {name!r} already exists")
        node = Node(self.env, name, kind, self.spec, self.monitors)
        self._nodes[name] = node
        self.fabric.attach(node.nic, partition=kind)
        return node

    # -- lookup ---------------------------------------------------------------------
    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError(f"no node named {name!r}") from None

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def compute_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_compute]

    @property
    def storage_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_storage]

    @property
    def storage_names(self) -> List[str]:
        return [n.name for n in self.storage_nodes]

    @property
    def compute_names(self) -> List[str]:
        return [n.name for n in self.compute_nodes]

    # -- running ----------------------------------------------------------------------
    def run(self, until=None):
        """Run the simulation (delegates to the environment)."""
        return self.env.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cluster compute={len(self.compute_nodes)}"
            f" storage={len(self.storage_nodes)} t={self.env.now:.3f}>"
        )
