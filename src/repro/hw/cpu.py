"""CPU model.

A node's CPU is modelled as a single execution engine (capacity-1
resource).  Kernel invocations are data-parallel across the node's
cores, so their duration is ``elements * sec_per_element / cores``;
control-plane work (serving a halo request, RPC dispatch) charges small
fixed costs on the same engine.  Sharing one resource is what produces
the paper's observed NAS overload: a storage server that must serve
neighbours' dependent-data requests delays its own offloaded kernels.
"""

from __future__ import annotations

from ..config import PlatformSpec
from ..errors import SimulationError
from ..sim import Environment, Resource
from ..sim.monitor import MonitorHub


class CPU:
    """Execution engine of one node."""

    def __init__(
        self,
        env: Environment,
        owner: str,
        spec: PlatformSpec,
        monitors: MonitorHub,
    ):
        if spec.cores <= 0:
            raise SimulationError(f"node must have >= 1 core, got {spec.cores}")
        self.env = env
        self.owner = owner
        self.spec = spec
        self.monitors = monitors
        self.engine = Resource(env, capacity=1)

    def kernel_seconds(self, kernel: str, n_elements: int) -> float:
        """Duration of a kernel invocation over ``n_elements`` elements."""
        return n_elements * self.spec.kernel_sec_per_element(kernel) / self.spec.cores

    def run_kernel(self, kernel: str, n_elements: int):
        """Process: occupy the engine for the kernel's duration."""
        return self.env.process(
            self._busy(self.kernel_seconds(kernel, n_elements), f"kernel:{kernel}"),
            name=f"cpu:{self.owner}:{kernel}",
        )

    def service(self, seconds: float, label: str = "service"):
        """Process: occupy the engine for fixed control-plane work."""
        return self.env.process(
            self._busy(seconds, label), name=f"cpu:{self.owner}:{label}"
        )

    def _busy(self, seconds: float, label: str):
        if seconds < 0:
            raise SimulationError(f"negative CPU time {seconds!r}")
        with self.engine.request() as req:
            yield req
            start = self.env.now
            yield self.env.timeout(seconds)
            self.monitors.counter(f"cpu.busy.{self.owner}").add(self.env.now - start)
            self.monitors.log("cpu", f"{self.owner}:{label}", seconds=seconds)
        return seconds
