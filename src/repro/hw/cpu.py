"""CPU model.

A node's CPU is modelled as a single execution engine (capacity-1
resource).  Kernel invocations are data-parallel across the node's
cores, so their duration is ``elements * sec_per_element / cores``;
control-plane work (serving a halo request, RPC dispatch) charges small
fixed costs on the same engine.  Sharing one resource is what produces
the paper's observed NAS overload: a storage server that must serve
neighbours' dependent-data requests delays its own offloaded kernels.
"""

from __future__ import annotations

from ..config import PlatformSpec
from ..errors import SimulationError
from ..sim import Environment, Resource
from ..sim.events import Event, Timeout
from ..sim.monitor import MonitorHub
from ..sim.resources import Request


class CPU:
    """Execution engine of one node."""

    def __init__(
        self,
        env: Environment,
        owner: str,
        spec: PlatformSpec,
        monitors: MonitorHub,
    ):
        if spec.cores <= 0:
            raise SimulationError(f"node must have >= 1 core, got {spec.cores}")
        self.env = env
        self.owner = owner
        self.spec = spec
        self.monitors = monitors
        self.engine = Resource(env, capacity=1)
        self._busy_counter = None

    def kernel_seconds(self, kernel: str, n_elements: int) -> float:
        """Duration of a kernel invocation over ``n_elements`` elements."""
        return n_elements * self.spec.kernel_sec_per_element(kernel) / self.spec.cores

    def run_kernel(self, kernel: str, n_elements: int):
        """Event: occupy the engine for the kernel's duration; the
        event's value is the busy time in seconds."""
        return self._busy(self.kernel_seconds(kernel, n_elements), f"kernel:{kernel}")

    def service(self, seconds: float, label: str = "service"):
        """Event: occupy the engine for fixed control-plane work."""
        return self._busy(seconds, label)

    def _busy(self, seconds: float, label: str) -> Event:
        # Hand-built grant -> timeout -> release chain; see Disk._io for
        # why this matches the generator form's event stream bit for bit
        # (here booking precedes the release push, as the old `with`
        # block booked before exiting).
        if seconds < 0:
            raise SimulationError(f"negative CPU time {seconds!r}")
        env = self.env
        done = Event(env)
        engine = self.engine

        def on_grant(_e: Event) -> None:
            start = env.now

            def on_fire(_e: Event) -> None:
                c = self._busy_counter
                if c is None:
                    c = self._busy_counter = self.monitors.counter(
                        f"cpu.busy.{self.owner}"
                    )
                c.add(env.now - start)
                monitors = self.monitors
                if monitors.trace_enabled:
                    monitors.log("cpu", f"{self.owner}:{label}", seconds=seconds)
                engine.release(req)
                done.succeed(seconds)

            timer = Timeout(env, seconds)
            timer.callbacks.append(on_fire)

        req = Request(engine)
        req.callbacks.append(on_grant)
        return done
