"""Hardware models: CPU, disk, node, cluster."""

from .cluster import Cluster
from .cpu import CPU
from .disk import Disk
from .node import KIND_COMPUTE, KIND_STORAGE, Node

__all__ = ["CPU", "Cluster", "Disk", "KIND_COMPUTE", "KIND_STORAGE", "Node"]
