"""Continuous results pipeline: the committed-report generator.

Turns the repo's committed measurement record — the ``BENCH_*.json``
snapshots under ``benchmarks/``, the append-only JSONL ledger under
``benchmarks/history/``, the critical-path attribution fixtures under
``benchmarks/attribution/`` and the sampled telemetry artifacts under
``benchmarks/telemetry/`` — into one human-readable
``docs/RESULTS.md``: per-bench result tables, run-over-run trend
tables with sparklines, plain-text flame renderings of where request
latency goes, the fleet health timeline (per-cell health strips, key
series and the alert ledger), and a section mapping the paper-claim
verdicts back to the figures in PAPER.md via docs/PAPER_MAP.md.

The emitter is **deterministic**: no timestamps, hostnames or wall
clocks of the generating run appear in the output — everything is a
pure function of the committed input files, so regenerating the
committed report must reproduce it byte for byte.  That exactness is
what `scripts/check_results.py` (CI ``results-smoke``) enforces: a
change that shifts a number must regenerate the report in the same
commit, or the drift gate fails.

Entry points: ``python -m repro.harness report`` (the harness
subcommand, :mod:`repro.harness.report`) and
:func:`repro.report.generate_results`.
"""

from .emit import generate_results
from .flame import partition_bar, render_flame, share_bar, sparkline
from .loaders import (
    AttributionFixture,
    BenchSnapshot,
    TelemetryFixture,
    load_attributions,
    load_benchmarks,
    load_history,
    load_telemetry,
)
from .tables import format_value, markdown_table

__all__ = [
    "AttributionFixture",
    "BenchSnapshot",
    "TelemetryFixture",
    "format_value",
    "generate_results",
    "load_attributions",
    "load_benchmarks",
    "load_history",
    "load_telemetry",
    "markdown_table",
    "partition_bar",
    "render_flame",
    "share_bar",
    "sparkline",
]
