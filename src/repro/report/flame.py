"""Plain-text flame rendering for critical-path attribution reports.

Input is the attribution document a ``--trace-dir`` bench run writes
(`<label>.attribution.json`,
:meth:`repro.metrics.critical_path.CriticalPathReport.as_dict`): an
aggregate per-stage table plus one decomposed row per traced request.
Output is committed markdown, so the renderer is deterministic down to
the rounding rule.

Two visual forms:

* :func:`share_bar` — one stage per line, a bar proportional to that
  stage's share of total latency (the aggregate stage table).
* :func:`partition_bar` — one *request class* per line, a single
  fixed-width bar partitioned into stage segments by glyph, so the bar
  **is** the request's latency cut the way the critical-path sweep cut
  it.  Segment widths use largest-remainder apportionment: floor every
  stage's exact width, then hand the leftover cells to the largest
  fractional remainders (ties: stage order), so the glyph counts always
  sum to exactly the bar width.

Request classes group the per-request rows by ``(tenant, outcome)`` —
the classes the SLO board accounts — with per-class mean latency and
coverage rendered inline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..metrics.critical_path import STAGES

__all__ = [
    "STAGE_GLYPHS",
    "partition_bar",
    "render_flame",
    "request_classes",
    "share_bar",
    "sparkline",
]

#: Bar width (characters) of the per-class partition bars.
BAR_WIDTH = 48

#: Width of the aggregate share bars.
SHARE_WIDTH = 32

#: One glyph per stage for the partitioned bars.  ``rpc`` is uppercase
#: to keep it distinct from ``read``/``redistribute``; the unattributed
#: remainder renders as ``.`` so instrumentation gaps look like gaps.
STAGE_GLYPHS = {
    "queue": "q",
    "attempt": "a",
    "backoff": "b",
    "fence": "f",
    "redistribute": "d",
    "normal": "n",
    "read": "r",
    "compute": "c",
    "offload": "o",
    "rpc": "R",
    "unattributed": ".",
}


def _glyph(stage: str) -> str:
    return STAGE_GLYPHS.get(stage, "?")


def share_bar(fraction: float, width: int = SHARE_WIDTH) -> str:
    """``#`` cells for a 0..1 fraction: round half up, but never render
    a nonzero share as an empty bar (a 0.1% stage still shows one cell)."""
    fraction = min(max(fraction, 0.0), 1.0)
    cells = int(fraction * width + 0.5)
    if fraction > 0.0 and cells == 0:
        cells = 1
    return "#" * cells


def partition_bar(
    stage_seconds: Sequence[Tuple[str, float]], width: int = BAR_WIDTH
) -> str:
    """One fixed-width bar partitioned into per-stage glyph segments.

    ``stage_seconds`` is ``(stage, seconds)`` in render order; zero and
    negative contributions get no cells.  Largest-remainder rounding
    keeps ``len(result) == width`` whenever any stage is positive.
    """
    positive = [(stage, s) for stage, s in stage_seconds if s > 0.0]
    total = sum(s for _, s in positive)
    if total <= 0.0 or width <= 0:
        return ""
    exact = [(stage, s / total * width) for stage, s in positive]
    cells = [int(e) for _, e in exact]
    leftover = width - sum(cells)
    remainders = sorted(
        range(len(exact)),
        key=lambda i: (-(exact[i][1] - cells[i]), i),
    )
    for i in remainders[:leftover]:
        cells[i] += 1
    return "".join(_glyph(stage) * n for (stage, _), n in zip(exact, cells))


#: Sparkline glyph ramp, lowest to highest.  Eight levels, like the
#: terminal convention; a flat series renders as all-minimum.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = BAR_WIDTH) -> str:
    """One glyph per bucket, min-to-max normalized over the series.

    Longer series are resampled into ``width`` buckets on integer
    boundaries (``values[n*i//width : n*(i+1)//width]``) — the same
    exact-apportionment discipline as :func:`partition_bar`: every
    value lands in exactly one bucket and bucket sizes differ by at
    most one — then each bucket renders its mean.  Shorter series get
    one glyph per value.  Deterministic down to the rounding rule.
    """
    values = [float(v) for v in values]
    if not values or width <= 0:
        return ""
    n = len(values)
    if n > width:
        values = [
            sum(chunk) / len(chunk)
            for chunk in (
                values[n * i // width : n * (i + 1) // width]
                for i in range(width)
            )
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0.0:
        return SPARK_GLYPHS[0] * len(values)
    top = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[min(top, int((v - lo) / span * (top + 1)))] for v in values
    )


def _stage_order(present: Sequence[str]) -> List[str]:
    """Canonical stage order first, unknown stages after, name order."""
    known = [s for s in STAGES if s in present]
    return known + sorted(set(present) - set(STAGES))


def request_classes(per_request: Sequence[Dict]) -> List[dict]:
    """Aggregate per-request rows into ``(tenant, outcome)`` classes.

    Each class carries the request count, mean latency, mean coverage,
    and summed per-stage seconds (from the rows' ``<stage>_s`` keys).
    Deterministic order: tenant, then outcome.
    """
    grouped: Dict[Tuple[str, str], dict] = {}
    for row in per_request:
        key = (str(row.get("tenant", "?")), str(row.get("outcome", "?")))
        bucket = grouped.setdefault(
            key,
            {
                "tenant": key[0],
                "outcome": key[1],
                "count": 0,
                "latency_s": 0.0,
                "coverage": 0.0,
                "stages": {},
            },
        )
        bucket["count"] += 1
        bucket["latency_s"] += float(row.get("latency_s", 0.0))
        bucket["coverage"] += float(row.get("coverage", 0.0))
        for field, value in row.items():
            if field.endswith("_s") and field != "latency_s":
                stage = field[: -len("_s")]
                bucket["stages"][stage] = bucket["stages"].get(stage, 0.0) + float(
                    value
                )
    classes = []
    for key in sorted(grouped):
        bucket = grouped[key]
        n = bucket["count"]
        classes.append(
            {
                "tenant": bucket["tenant"],
                "outcome": bucket["outcome"],
                "count": n,
                "mean_latency_s": bucket["latency_s"] / n,
                "mean_coverage": bucket["coverage"] / n,
                "stages": bucket["stages"],
            }
        )
    return classes


def render_flame(report: Dict, label: str, width: int = BAR_WIDTH) -> List[str]:
    """The full plain-text flame for one attribution document.

    Header line with the sample size and the two acceptance figures
    (min span coverage, max attribution error), the aggregate stage
    table with share bars, a glyph legend, and one partitioned latency
    bar per ``(tenant, outcome)`` request class.
    """
    lines = [
        f"{label} — {report.get('requests', 0)} requests"
        f" · min coverage {float(report.get('min_coverage', 0.0)):.1%}"
        f" · max attribution error"
        f" {float(report.get('max_attribution_error', 0.0)):.2%}"
    ]
    stages = report.get("stages", [])
    if stages:
        name_w = max(len(s["stage"]) for s in stages)
        lines.append("")
        for row in stages:
            share = float(row.get("share", 0.0))
            lines.append(
                f"{row['stage']:<{name_w}}  {float(row['seconds']):>9.4f} s"
                f"  {share:>6.1%}  {share_bar(share)}"
            )
    classes = request_classes(report.get("per_request", []))
    if classes:
        order = _stage_order(
            [s for cls in classes for s in cls["stages"]]
        )
        legend = " ".join(f"{_glyph(s)}={s}" for s in order)
        lines += ["", f"per request class (tenant/outcome; {legend}):", ""]
        head_w = max(
            len(f"{cls['tenant']}/{cls['outcome']}") for cls in classes
        )
        for cls in classes:
            bar = partition_bar(
                [(s, cls["stages"].get(s, 0.0)) for s in order], width
            )
            lines.append(
                f"{cls['tenant'] + '/' + cls['outcome']:<{head_w}}"
                f"  n={cls['count']:<4d}"
                f" mean {cls['mean_latency_s']:.4f} s"
                f"  |{bar}|"
            )
    return lines
