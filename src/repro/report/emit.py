"""The docs/RESULTS.md emitter.

One pure function from the committed inputs (bench snapshots, history
ledgers, attribution fixtures) to the full markdown document.  Nothing
volatile enters the output: the generating run's clock, host and wall
times never appear; wall-clock figures are only ever shown as ranges
over the committed history ledger, and the exactly-reproducible fields
(rows, check verdicts, event counts) are printed as-is.  Regenerating
from the same tree therefore reproduces the committed file byte for
byte — the contract `scripts/check_results.py` enforces in CI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .flame import render_flame, sparkline
from .loaders import (
    AttributionFixture,
    BenchSnapshot,
    TelemetryFixture,
    load_attributions,
    load_benchmarks,
    load_history,
    load_telemetry,
)
from .tables import ledger_range, markdown_table, rows_table

__all__ = ["generate_results"]

PASS = "✓"
FAIL = "✗"

#: Where each paper experiment's constructs are mapped to code
#: (docs/PAPER_MAP.md anchors) and what it reproduces from the paper.
PAPER_CLAIM_MAP = (
    ("table1", "Table I — kernel descriptions", "PAPER_MAP.md#section-iv-evaluation"),
    ("fig10", "Fig. 10 — dependence impact, NAS vs TS",
     "PAPER_MAP.md#section-iv-evaluation"),
    ("fig11", "Fig. 11 — NAS / DAS / TS at 24 GB",
     "PAPER_MAP.md#section-iv-evaluation"),
    ("fig12", "Fig. 12 — scaling with data size",
     "PAPER_MAP.md#section-iv-evaluation"),
    ("fig13", "Fig. 13 — scaling with node count",
     "PAPER_MAP.md#section-iv-evaluation"),
    ("fig14", "Fig. 14 — normalized sustained bandwidth",
     "PAPER_MAP.md#section-iv-evaluation"),
    ("ext-oversub", "Conclusion extensions — oversubscribed bisection",
     "PAPER_MAP.md#section-v-conclusion--future-work"),
)

#: Key series the fleet health timeline renders per scope, in order,
#: when the scope sampled them.  Everything else stays in the artifact.
TIMELINE_SERIES = (
    ("serve.queue.depth", "queue depth"),
    ("serve.latency.win_p99", "p99 latency (s, windowed)"),
    ("serve.path.offload", "offloaded ops / tick"),
    ("faults.failover_reads", "failover reads / tick"),
    ("fleet.cells_healthy", "healthy cells"),
    ("fleet.spillovers", "spillovers / tick"),
    ("fleet.routed", "routed requests / tick"),
)

#: Health-strip glyphs: one cell per sampling boundary.
HEALTH_PAGE = "█"
HEALTH_TICKET = "▒"
HEALTH_OK = "·"

_HEADER = """\
# Results

<!-- GENERATED FILE — do not edit by hand.
     Regenerate:  PYTHONPATH=src python -m repro.harness report
     Drift gate:  python scripts/check_results.py  (CI job: results-smoke) -->

The measured state of the repository, rendered from its committed
measurement record and nothing else: the [`benchmarks/`](../benchmarks)
`BENCH_*.json` snapshots (payload schema: [BENCHMARKS.md](BENCHMARKS.md)),
the append-only [`benchmarks/history/`](../benchmarks/history) ledger the
regression gate keeps, the committed critical-path attribution
fixtures under [`benchmarks/attribution/`](../benchmarks/attribution),
and the sampled telemetry artifacts under
[`benchmarks/telemetry/`](../benchmarks/telemetry).
Simulated quantities (rows, check verdicts, event counts) are exactly
reproducible and printed as-is; host-dependent quantities (wall clocks,
events/wall-second) appear only as ranges over the recorded history.
"""


def _check_line(exp: dict) -> str:
    checks = exp.get("checks", [])
    passed = sum(1 for c in checks if c.get("passed"))
    total = len(checks)
    if not total:
        return "*(no shape checks recorded)*"
    if passed == total:
        return f"{PASS} **{passed}/{total}** shape checks pass"
    failing = "; ".join(
        c.get("claim", "?") for c in checks if not c.get("passed")
    )
    return f"{FAIL} **{passed}/{total}** shape checks pass — failing: {failing}"


def _overview(
    snapshots: Sequence[BenchSnapshot], ledgers: Dict[str, List[dict]]
) -> List[str]:
    lines = ["## Snapshot overview", ""]
    rows = []
    for snap in snapshots:
        passed, total = snap.check_counts()
        ledger = ledgers.get(snap.filename.rsplit(".", 1)[0], [])
        rows.append(
            [
                f"`{snap.filename}`",
                snap.bench,
                snap.scale_kb,
                len(snap.experiments),
                f"{PASS} {passed}/{total}" if passed == total
                else f"{FAIL} {passed}/{total}",
                snap.events_dispatched_total,
                ledger_range(ledger, "wall_seconds_total") or "—",
            ]
        )
    lines += markdown_table(
        [
            "snapshot",
            "family",
            "scale_kb",
            "experiments",
            "checks",
            "events dispatched",
            "wall s (recorded range)",
        ],
        rows,
    )
    lines += [
        "",
        "`events dispatched` is the exactly-reproducible engine-event",
        "count — any drift is a behaviour change, not noise.  The wall",
        "range spans every run the",
        "[history ledger](BENCHMARKS.md#the-history-ledger) has recorded",
        "and is host-dependent.",
    ]
    return lines


def _bench_sections(snapshots: Sequence[BenchSnapshot]) -> List[str]:
    lines: List[str] = []
    for snap in snapshots:
        lines += ["", f"## {snap.bench} (`{snap.filename}`)", ""]
        many = len(snap.experiments) > 1
        for name, exp in snap.experiments.items():
            if many:
                lines += [f"### {name}", ""]
            title = exp.get("title", "")
            if title:
                lines += [f"*{title}*", ""]
            lines.append(
                f"{_check_line(exp)}"
                f" · events dispatched: {exp.get('events_dispatched', 0)}"
            )
            notes = exp.get("notes")
            if notes:
                lines += ["", f"Notes: {notes}"]
            lines.append("")
            lines += rows_table(exp.get("rows", []))
            lines.append("")
    return lines


def _trend_section(
    snapshots: Sequence[BenchSnapshot], ledgers: Dict[str, List[dict]]
) -> List[str]:
    lines = [
        "",
        "## Run-over-run trends",
        "",
        "One row per run recorded by",
        "[`scripts/check_regression.py --history-dir`](BENCHMARKS.md#the-history-ledger)",
        "(append order; a new entry lands on every gated regeneration,",
        "so the trajectory grows PR over PR).  `events dispatched` must",
        "be identical between passing runs at the same scale; the wall",
        "and throughput columns are host-dependent context, not gates.",
    ]
    for snap in snapshots:
        entries = ledgers.get(snap.filename.rsplit(".", 1)[0])
        if not entries:
            continue
        lines += ["", f"### {snap.bench} trajectory", ""]
        lines += markdown_table(
            [
                "run",
                "scale_kb",
                "events dispatched",
                "wall s",
                "events / wall s",
                "verdict",
            ],
            [
                [
                    i,
                    e.get("scale_kb"),
                    e.get("events_dispatched_total"),
                    e.get("wall_seconds_total"),
                    e.get("events_per_wall_second"),
                    PASS if e.get("checks_pass") else FAIL,
                ]
                for i, e in enumerate(entries, 1)
            ],
        )
        sparks = _ledger_sparklines(entries)
        if sparks:
            lines += ["", sparks]
    return lines


def _ledger_sparklines(entries: List[dict]) -> str:
    """One-line run-over-run sparklines (oldest left) for a ledger."""
    parts = []
    for key, title in (
        ("wall_seconds_total", "wall s"),
        ("events_per_wall_second", "events / wall s"),
    ):
        values = [e.get(key) for e in entries]
        values = [float(v) for v in values if v is not None]
        if len(values) >= 2:
            parts.append(f"{title} `{sparkline(values)}`")
    if not parts:
        return ""
    return "Run-over-run sparklines (oldest → newest): " + " · ".join(parts)


def _flame_section(fixtures: Sequence[AttributionFixture]) -> List[str]:
    if not fixtures:
        return []
    lines = [
        "",
        "## Where the latency goes (critical path)",
        "",
        "Committed critical-path attributions from traced bench cells",
        "(`--trace-dir`), rendered by the text flame renderer",
        "(`repro.report.flame`; method and schema:",
        "[OBSERVABILITY.md](OBSERVABILITY.md#the-text-flame-renderer-and-the-attribution-file)).",
        "Each request class's bar is its mean latency partitioned into",
        "per-stage segments by the deepest-span rule, so segment widths",
        "are shares of measured latency — not estimates.",
    ]
    for fixture in fixtures:
        lines += ["", "```text"]
        lines += render_flame(fixture.report, fixture.label)
        lines += ["```"]
    return lines


def _health_strip(ledger: List[dict], interval: float, samples: int) -> str:
    """One glyph per sampling boundary from a scope's alert ledger:
    page firing beats ticket firing beats healthy."""
    cells = []
    for k in range(samples):
        t = (k + 1) * interval
        glyph = HEALTH_OK
        for entry in ledger:
            fired = entry.get("fired_at")
            resolved = entry.get("resolved_at")
            if fired is None or t < fired:
                continue
            if resolved is not None and t >= resolved:
                continue
            if entry.get("severity") == "page":
                glyph = HEALTH_PAGE
                break
            glyph = HEALTH_TICKET
        cells.append(glyph)
    return "".join(cells)


def _timeline_section(fixtures: Sequence[TelemetryFixture]) -> List[str]:
    if not fixtures:
        return []
    lines = [
        "",
        "## Fleet health timeline",
        "",
        "Committed telemetry artifacts from sampler-enabled bench cells",
        "(`--telemetry-dir`; sampling method, artifact schema and alert",
        "rules: [OBSERVABILITY.md](OBSERVABILITY.md#live-telemetry-the-clock-driven-sampler-and-the-alert-ledger)).",
        "Each scope gets a health strip — one cell per sampling boundary,",
        f"`{HEALTH_PAGE}` while a page-severity alert is firing,",
        f"`{HEALTH_TICKET}` while only ticket-severity alerts are firing,",
        f"`{HEALTH_OK}` healthy — and a sparkline per key series.  The",
        "sampler rides the simulation clock, so every strip and every",
        "ledger timestamp is exactly reproducible.",
    ]
    for fixture in fixtures:
        lines += [
            "",
            f"### `{fixture.label}`",
            "",
            f"Sampling interval {fixture.interval:g} s ·"
            f" {fixture.samples} boundary samples.",
            "",
            "```text",
        ]
        for scope_name in sorted(fixture.scopes):
            scope = fixture.scopes[scope_name]
            alerts = scope.get("alerts") or {}
            ledger = alerts.get("ledger", [])
            fired = sum(1 for e in ledger if e.get("fired_at") is not None)
            resolved = sum(
                1 for e in ledger if e.get("resolved_at") is not None
            )
            suffix = (
                f" — {fired} alert(s) fired, {resolved} resolved"
                if alerts
                else " — no alert rules attached"
            )
            lines.append(f"{scope_name}{suffix}")
            lines.append(
                "  health"
                f" |{_health_strip(ledger, fixture.interval, fixture.samples)}|"
            )
            series = scope.get("series", {})
            for name, title in TIMELINE_SERIES:
                entry = series.get(name)
                values = [v for _, v in (entry or {}).get("points", [])]
                if not values:
                    continue
                lines.append(
                    f"  {title:<26} |{sparkline(values)}|"
                    f"  min {min(values):g} max {max(values):g}"
                )
            lines.append("")
        if lines[-1] == "":
            lines.pop()
        lines.append("```")
        rows = [
            [
                f"`{entry.get('scope')}`",
                f"`{entry.get('rule')}`",
                entry.get("severity"),
                f"{entry.get('fired_at'):g}",
                "—"
                if entry.get("resolved_at") is None
                else f"{entry.get('resolved_at'):g}",
            ]
            for scope_name in sorted(fixture.scopes)
            for entry in (
                (fixture.scopes[scope_name].get("alerts") or {}).get(
                    "ledger", []
                )
            )
        ]
        if rows:
            lines += ["", "Alert ledger (simulated seconds):", ""]
            lines += markdown_table(
                ["scope", "rule", "severity", "fired at", "resolved at"], rows
            )
    return lines


def _paper_section(snapshots: Sequence[BenchSnapshot]) -> List[str]:
    paper = next((s for s in snapshots if s.bench == "paper"), None)
    if paper is None:
        return []
    lines = [
        "",
        "## Paper claims",
        "",
        "Every quantitative claim reproduced from Chen & Chen (ICPP 2012;",
        "abstract in [PAPER.md](../PAPER.md)), with the measured verdict",
        "from `BENCH_paper.json` and the construct-to-code mapping in",
        "[PAPER_MAP.md](PAPER_MAP.md).  A failing verdict here means the",
        "committed snapshot no longer supports the paper's claim.",
        "",
    ]
    known = {name for name, _, _ in PAPER_CLAIM_MAP}
    entries = [
        (name, what, anchor)
        for name, what, anchor in PAPER_CLAIM_MAP
        if name in paper.experiments
    ] + [
        (name, paper.experiments[name].get("title", name),
         "PAPER_MAP.md#section-iv-evaluation")
        for name in paper.experiments
        if name not in known
    ]
    rows = []
    for name, what, anchor in entries:
        exp = paper.experiments[name]
        checks = exp.get("checks", [])
        passed = sum(1 for c in checks if c.get("passed"))
        rows.append(
            [
                f"`{name}`",
                what,
                f"[map]({anchor})",
                f"{PASS} {passed}/{len(checks)}"
                if passed == len(checks)
                else f"{FAIL} {passed}/{len(checks)}",
            ]
        )
    lines += markdown_table(
        ["experiment", "paper figure / table", "paper-to-code", "claims"], rows
    )
    for name, what, anchor in entries:
        exp = paper.experiments[name]
        lines += ["", f"### {name} claims", ""]
        for check in exp.get("checks", []):
            mark = PASS if check.get("passed") else FAIL
            lines.append(f"- {mark} {check.get('claim', '?')}")
    return lines


def generate_results(
    bench_dir="benchmarks",
    history_dir="benchmarks/history",
    attribution_dir="benchmarks/attribution",
    telemetry_dir="benchmarks/telemetry",
    snapshots: Optional[Sequence[BenchSnapshot]] = None,
) -> str:
    """The complete docs/RESULTS.md text for one committed input set.

    ``snapshots`` overrides the directory scan (the tests inject
    fixture payloads directly); the history, attribution and telemetry
    directories may be absent, in which case their sections render
    empty/omitted.
    """
    if snapshots is None:
        snapshots = load_benchmarks(bench_dir)
    ledgers = load_history(history_dir)
    fixtures = load_attributions(attribution_dir)
    telemetry = load_telemetry(telemetry_dir)
    lines: List[str] = [_HEADER]
    lines += _overview(snapshots, ledgers)
    lines += _bench_sections(snapshots)
    lines += _trend_section(snapshots, ledgers)
    lines += _flame_section(fixtures)
    lines += _timeline_section(telemetry)
    lines += _paper_section(snapshots)
    return "\n".join(lines).rstrip("\n") + "\n"
