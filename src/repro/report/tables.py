"""Markdown table rendering for the results report.

Everything here is a pure function of its inputs — formatting floats
with a fixed significant-digit rule, booleans as ``yes``/``no`` — so
the emitted document is byte-stable across regenerations.  Columns are
taken from the rows themselves in order of first appearance: the bench
payloads embed their rows verbatim from the experiment reports, whose
key order is pinned by the harness, so the report never needs a
per-family column list that could drift from the payload schema.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "format_value",
    "ledger_range",
    "markdown_table",
    "row_columns",
    "rows_table",
]

#: Significant digits for floats (matches the benches' own rounding
#: scale; enough to keep p99s and makespans distinguishable).
FLOAT_DIGITS = 4


def format_value(value) -> str:
    """One cell: fixed float rule, JSON-ish booleans, empty for None."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{FLOAT_DIGITS}g}"
    return str(value)


def markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> List[str]:
    """A GitHub-flavored markdown table as a list of lines."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
    return lines


def row_columns(rows: Sequence[Dict]) -> List[str]:
    """Column order for a rows table: first appearance across the rows."""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def rows_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None):
    """Markdown lines for a payload's embedded ``rows`` list."""
    if not rows:
        return ["*(no rows)*"]
    columns = list(columns) if columns is not None else row_columns(rows)
    return markdown_table(columns, [[r.get(c) for c in columns] for r in rows])


def ledger_range(entries: Sequence[Dict], key: str) -> str:
    """A volatile field rendered as a range over the ledger's entries.

    Wall clocks and events/wall-second are host-dependent, so the
    report never prints the snapshot's point value as if it were a
    measurement; it prints the min–max envelope of every recorded run
    instead (a single value when the ledger has one entry or the
    extremes coincide).
    """
    values = [e[key] for e in entries if e.get(key) is not None]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if lo == hi:
        return format_value(lo)
    return f"{format_value(lo)}–{format_value(hi)}"
