"""Readers for the committed results inputs.

Three kinds of file feed the report, all committed to the repository so
the generated document is a pure function of the tree:

* ``benchmarks/BENCH_*.json`` — one snapshot per bench family, written
  by ``--bench-dir`` (shape: docs/BENCHMARKS.md).  Iterated in the
  writer's canonical order (:data:`repro.harness.trajectory.BENCH_FILES`),
  with files the writer does not know about appended in name order.
* ``benchmarks/history/<name>.jsonl`` — the append-only ledger
  `scripts/check_regression.py --history-dir` keeps: one line per
  checked run, in append order.
* ``benchmarks/attribution/<label>.attribution.json`` — critical-path
  attribution fixtures produced by a ``--trace-dir`` bench run
  (:meth:`repro.metrics.critical_path.CriticalPathReport.as_dict`).
* ``benchmarks/telemetry/<label>.telemetry.json`` — sampled time-series
  and alert-ledger artifacts produced by a ``--telemetry-dir`` bench
  run (schema marker ``repro.telemetry/1``; docs/OBSERVABILITY.md),
  rendered as the fleet health timeline.

Loaders are strict about what they need (a snapshot must carry
``bench`` and ``experiments``) and permissive about everything else, so
a payload-schema addition does not break report generation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from ..errors import HarnessError
from ..harness.trajectory import BENCH_FILES

__all__ = [
    "AttributionFixture",
    "BenchSnapshot",
    "TelemetryFixture",
    "load_attributions",
    "load_benchmarks",
    "load_history",
    "load_telemetry",
]


@dataclass(frozen=True)
class BenchSnapshot:
    """One committed ``BENCH_*.json`` payload."""

    filename: str
    bench: str
    payload: Dict = field(hash=False)

    @property
    def scale_kb(self):
        return self.payload.get("scale_kb")

    @property
    def events_dispatched_total(self):
        return self.payload.get("events_dispatched_total")

    @property
    def experiments(self) -> Dict[str, dict]:
        return self.payload.get("experiments", {})

    def check_counts(self):
        """``(passed, total)`` over every experiment's shape checks."""
        passed = total = 0
        for exp in self.experiments.values():
            for check in exp.get("checks", ()):
                total += 1
                passed += bool(check.get("passed"))
        return passed, total

    def failing_claims(self) -> List[str]:
        return [
            check.get("claim", "?")
            for exp in self.experiments.values()
            for check in exp.get("checks", ())
            if not check.get("passed")
        ]


@dataclass(frozen=True)
class AttributionFixture:
    """One committed ``<label>.attribution.json`` critical-path report."""

    label: str
    report: Dict = field(hash=False)

    @property
    def stages(self) -> List[dict]:
        return self.report.get("stages", [])

    @property
    def per_request(self) -> List[dict]:
        return self.report.get("per_request", [])


@dataclass(frozen=True)
class TelemetryFixture:
    """One committed ``<label>.telemetry.json`` sampler artifact."""

    label: str
    doc: Dict = field(hash=False)

    @property
    def interval(self) -> float:
        return float(self.doc.get("interval", 0.0))

    @property
    def samples(self) -> int:
        return int(self.doc.get("samples", 0))

    @property
    def scopes(self) -> Dict[str, dict]:
        return self.doc.get("scopes", {})


def _read_json(path: Path):
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise HarnessError(f"cannot read {path}: {exc}") from exc


def load_benchmarks(bench_dir) -> List[BenchSnapshot]:
    """Every ``BENCH_*.json`` under ``bench_dir``, canonical order first.

    Files named in :data:`~repro.harness.trajectory.BENCH_FILES` come in
    that order; any other ``BENCH_*.json`` (a bench newer than this
    loader) follows in name order, its family read from the payload's
    own ``bench`` field.
    """
    bench_dir = Path(bench_dir)
    if not bench_dir.is_dir():
        raise HarnessError(f"benchmarks directory {bench_dir} does not exist")
    known = [name for name, _ in BENCH_FILES]
    names = [n for n in known if (bench_dir / n).exists()]
    names += sorted(
        p.name for p in bench_dir.glob("BENCH_*.json") if p.name not in known
    )
    snapshots = []
    for name in names:
        payload = _read_json(bench_dir / name)
        if "experiments" not in payload or "bench" not in payload:
            raise HarnessError(
                f"{bench_dir / name} is not a bench trajectory payload"
                " (missing 'bench'/'experiments'; see docs/BENCHMARKS.md)"
            )
        snapshots.append(
            BenchSnapshot(filename=name, bench=payload["bench"], payload=payload)
        )
    return snapshots


def load_history(history_dir) -> Dict[str, List[dict]]:
    """``{filename stem: ledger entries, append order}`` for a dir of
    ``<name>.jsonl`` ledgers; empty when the directory is absent (a
    tree that never ran the regression gate still gets a report)."""
    history_dir = Path(history_dir)
    if not history_dir.is_dir():
        return {}
    ledgers: Dict[str, List[dict]] = {}
    for path in sorted(history_dir.glob("*.jsonl")):
        entries = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        if entries:
            ledgers[path.stem] = entries
    return ledgers


def load_attributions(attribution_dir) -> List[AttributionFixture]:
    """Every ``*.attribution.json`` under a directory, label order;
    empty when the directory is absent."""
    attribution_dir = Path(attribution_dir)
    if not attribution_dir.is_dir():
        return []
    fixtures = []
    for path in sorted(attribution_dir.glob("*.attribution.json")):
        report = _read_json(path)
        label = path.name[: -len(".attribution.json")]
        fixtures.append(AttributionFixture(label=label, report=report))
    return fixtures


def load_telemetry(telemetry_dir) -> List[TelemetryFixture]:
    """Every ``*.telemetry.json`` under a directory, label order;
    empty when the directory is absent."""
    telemetry_dir = Path(telemetry_dir)
    if not telemetry_dir.is_dir():
        return []
    fixtures = []
    for path in sorted(telemetry_dir.glob("*.telemetry.json")):
        doc = _read_json(path)
        label = path.name[: -len(".telemetry.json")]
        fixtures.append(TelemetryFixture(label=label, doc=doc))
    return fixtures
