"""repro.obs — deterministic tracing on the simulation clock.

Spans + tracer (:mod:`~repro.obs.span`), Chrome/Perfetto trace-event
export (:mod:`~repro.obs.export`), and structural validation of the
exported JSON (:mod:`~repro.obs.validate`).  See docs/OBSERVABILITY.md
for the span taxonomy and the zero-perturbation contract.
"""

from .export import trace_document, trace_events, write_trace
from .span import (
    NULL_SPAN,
    NULL_TRACER,
    Interval,
    NullSpan,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    intervals_total,
    merge_intervals,
    spans_from_monitor_trace,
)
from .validate import validate_trace

__all__ = [
    "Interval",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "intervals_total",
    "merge_intervals",
    "spans_from_monitor_trace",
    "trace_document",
    "trace_events",
    "validate_trace",
    "write_trace",
]
