"""Deterministic spans on the simulation clock.

A :class:`Span` is one timed interval of a request's (or the system's)
life: queued, an attempt, a fence wait, one fan-out RPC.  Spans form a
tree via ``parent`` span ids and carry attributes (tenant, file,
kernel, bytes...) plus zero-duration *instant* events (a cache verdict,
a fault, a hedge firing).

The :class:`Tracer` is the collector.  Two properties are load-bearing:

* **Zero-cost when absent.**  Every instrumentation site reads
  ``monitors.tracer`` — the falsy :data:`NULL_TRACER` by default — and
  does nothing else.  No simulation events, processes, or timeouts are
  ever created for tracing, so the DES event stream (ids, ordering,
  RNG draws) is bit-identical with the subsystem compiled out.
* **Non-perturbing when present.**  Recording a span only reads the
  clock and appends to Python lists.  Ending a span at a *future*
  completion is done by appending a plain callback to the pending
  simulation event's callback list (:meth:`Tracer.end_on`), which fires
  inside the normal ``env.step()`` at the exact completion timestamp —
  again, no new events.  Traced and untraced runs therefore settle
  every request at identical simulated times with identical digests.

The tracer is clock-agnostic: it is constructed unbound and later
:meth:`bound <Tracer.bind>` to ``env.now`` by whoever owns the
environment (the serving system), so benches can hand a fresh tracer
to a cell before the platform exists.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "Interval",
    "merge_intervals",
    "intervals_total",
    "rpc_reply_bytes",
    "rpc_status",
    "spans_from_monitor_trace",
]

Interval = Tuple[float, float]


class SpanEvent:
    """A zero-duration mark inside (or outside) a span."""

    __slots__ = ("time", "name", "attrs")

    def __init__(self, time: float, name: str, attrs: Optional[dict] = None):
        self.time = time
        self.name = name
        self.attrs = attrs or {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SpanEvent {self.name!r} @ {self.time:g}>"


class Span:
    """One timed interval; a node of the trace tree."""

    __slots__ = (
        "sid",
        "parent",
        "name",
        "cat",
        "track",
        "start",
        "end",
        "attrs",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        sid: int,
        name: str,
        start: float,
        cat: str = "span",
        track=None,
        parent: Optional[int] = None,
        end: Optional[float] = None,
        attrs: Optional[dict] = None,
        tracer: Optional["Tracer"] = None,
    ):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        #: Display lane: a request id for request-scoped spans, or a
        #: system lane name ("faults", "autoscale", "serve").
        self.track = track
        self.start = start
        self.end = end
        self.attrs = attrs or {}
        self.events: List[SpanEvent] = []
        self._tracer = tracer

    def __bool__(self) -> bool:
        return True

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def interval(self) -> Interval:
        return (self.start, self.end if self.end is not None else self.start)

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Record an instant event at the current clock, inside this span."""
        now = self._tracer.now() if self._tracer is not None else self.start
        self.events.append(SpanEvent(now, name, attrs))

    def finish(self, **attrs) -> "Span":
        """End the span at the current clock (first finish wins).

        A span whose parent already ended earlier is marked
        ``detached``: work the parent no longer waits for (an abandoned
        hedge read, a superseded RPC) legitimately outlives the logical
        operation that spawned it, and the validator permits exactly
        these escapes.
        """
        if attrs:
            self.attrs.update(attrs)
        if self.end is None:
            self.end = (
                self._tracer.now() if self._tracer is not None else self.start
            )
            if self._tracer is not None and self.parent is not None:
                parent = self._tracer.span(self.parent)
                if (
                    parent is not None
                    and parent.end is not None
                    and self.end > parent.end
                ):
                    self.attrs.setdefault("detached", True)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.end:g}" if self.end is not None else "..."
        return f"<Span #{self.sid} {self.cat}:{self.name!r} [{self.start:g}, {end})>"


class NullSpan:
    """Falsy no-op stand-in so hot paths need no ``if`` per attribute."""

    __slots__ = ()

    sid = -1
    parent = None
    name = ""
    cat = ""
    track = None
    start = 0.0
    end = 0.0
    attrs: dict = {}
    events: list = []
    duration = 0.0
    interval = (0.0, 0.0)

    def __bool__(self) -> bool:
        return False

    def annotate(self, **attrs) -> "NullSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        return None

    def finish(self, **attrs) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class Tracer:
    """Collects spans and instants against an externally owned clock.

    ``sample`` (a fraction in ``(0, 1]``, e.g. ``1/8``) keeps only every
    Nth *request* tree, chosen deterministically by request id — request
    ``r`` is traced iff ``r % round(1/sample) == 0`` — so a sampled
    trace of a run is a strict subset of the full trace of the same run
    and two sampled runs from the same seed pick identical requests.
    Sampling drops spans, never simulation events: a sampled run's
    summary is still bit-identical to the untraced run.  System-lane
    spans and instants (faults, autoscale) are always kept.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sample: float = 1.0,
    ):
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample!r}")
        self._clock = clock
        #: Trace every Nth request (1 = every request).
        self.sample_every = max(1, round(1.0 / sample))
        self._next_sid = 0
        self._by_sid: Dict[int, Span] = {}
        self.spans: List[Span] = []
        self.instants: List[SpanEvent] = []
        #: Extra lane hint per instant (parallel to :attr:`instants`).
        self._instant_tracks: List[object] = []
        #: req_id -> root span, the per-request registry (sampled only).
        self.requests: Dict[int, Span] = {}

    def sampled(self, req_id: int) -> bool:
        """Whether this request id is traced under the sampling rate."""
        return req_id % self.sample_every == 0

    def __bool__(self) -> bool:
        return True

    # -- clock ---------------------------------------------------------------
    def bind(self, clock: Callable[[], float]) -> "Tracer":
        """Attach the simulation clock (callable returning ``env.now``)."""
        self._clock = clock
        return self

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- span lifecycle --------------------------------------------------------
    def begin(
        self,
        name: str,
        cat: str = "span",
        track=None,
        parent=None,
        at: Optional[float] = None,
        **attrs,
    ) -> Span:
        """Open a span starting now (or at an explicit time).

        A :data:`NULL_SPAN` parent means the parent tree was sampled
        out: the child is dropped too (sampling is inherited), so an
        unsampled request contributes no spans at all.
        """
        if isinstance(parent, Span):
            parent_sid = parent.sid
            if track is None:
                track = parent.track
        elif isinstance(parent, NullSpan):
            return NULL_SPAN
        else:
            parent_sid = parent
        sid = self._next_sid
        self._next_sid += 1
        span = Span(
            sid,
            name,
            self.now() if at is None else at,
            cat=cat,
            track=track,
            parent=parent_sid,
            attrs=attrs,
            tracer=self,
        )
        self.spans.append(span)
        self._by_sid[sid] = span
        return span

    def span(self, sid: int) -> Optional[Span]:
        """The span with this id, or ``None``."""
        return self._by_sid.get(sid)

    def instant(self, name: str, track=None, **attrs) -> None:
        """A standalone instant event (faults, resizes, rejections)."""
        self.instants.append(SpanEvent(self.now(), name, attrs))
        self._instant_tracks.append(track)

    def end_on(self, span: Span, event, **attrs) -> None:
        """End ``span`` exactly when the pending simulation ``event``
        completes, by appending a plain Python callback to it.

        The callback runs inside the normal ``env.step()`` for that
        event — tracing never schedules anything.  If the event has
        already been processed (``callbacks is None``) the span ends
        now.  ``attrs`` may map attribute names to callables taking the
        completed event (e.g. reply size extractors); plain values pass
        through.
        """
        callbacks = getattr(event, "callbacks", None)
        if callbacks is None:
            self._finish_with(span, event, attrs)
            return

        def _close(ev, _span=span, _attrs=attrs):
            self._finish_with(_span, ev, _attrs)

        callbacks.append(_close)

    def _finish_with(self, span: Span, event, attrs: dict) -> None:
        resolved = {}
        for key, value in attrs.items():
            try:
                resolved[key] = value(event) if callable(value) else value
            except Exception:  # noqa: BLE001 - attrs must never break a run
                resolved[key] = None
        span.finish(**resolved)

    # -- per-request registry --------------------------------------------------
    def request_begin(self, req, at: Optional[float] = None):
        """Open (and register) the root span of an admitted request.

        Returns :data:`NULL_SPAN` (registering nothing) for requests the
        sampling rate drops; every child span guarded by
        :meth:`request_span` then collapses to :data:`NULL_SPAN` too.
        """
        if not self.sampled(req.req_id):
            return NULL_SPAN
        root = self.begin(
            "request",
            cat="request",
            track=req.req_id,
            at=req.arrival if at is None else at,
            tenant=req.tenant,
            file=req.file,
            kernel=req.operator,
            deadline=req.deadline,
        )
        self.requests[req.req_id] = root
        return root

    def request_span(self, req_id: int):
        """The registered root span, or :data:`NULL_SPAN` when unknown."""
        return self.requests.get(req_id, NULL_SPAN)

    def request_end(self, req_id: int, outcome: str) -> None:
        root = self.requests.get(req_id)
        if root is not None:
            root.finish(outcome=outcome)

    # -- reporting -------------------------------------------------------------
    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is None]

    def children_index(self) -> Dict[int, List[Span]]:
        """parent sid -> child spans, insertion-ordered."""
        index: Dict[int, List[Span]] = {}
        for span in self.spans:
            if span.parent is not None:
                index.setdefault(span.parent, []).append(span)
        return index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Tracer spans={len(self.spans)} instants={len(self.instants)}"
            f" requests={len(self.requests)}>"
        )


class NullTracer:
    """Falsy tracer: every site guards with ``if tracer:`` and pays one
    attribute read when tracing is off."""

    enabled = False

    def __bool__(self) -> bool:
        return False

    def bind(self, clock) -> "NullTracer":
        return self

    def now(self) -> float:
        return 0.0

    def begin(self, name, cat="span", track=None, parent=None, at=None, **attrs):
        return NULL_SPAN

    def instant(self, name, track=None, **attrs) -> None:
        return None

    def end_on(self, span, event, **attrs) -> None:
        return None

    def request_begin(self, req, at=None):
        return NULL_SPAN

    def request_span(self, req_id):
        return NULL_SPAN

    def request_end(self, req_id, outcome) -> None:
        return None


NULL_TRACER = NullTracer()


# -- completed-event attribute extractors (for Tracer.end_on) -----------------
def rpc_status(event) -> str:
    """"ok" when the completed call succeeded, "error" otherwise."""
    return "ok" if getattr(event, "_ok", False) else "error"


def rpc_reply_bytes(event):
    """Reply message size of a completed call, when one exists."""
    if getattr(event, "_ok", False):
        return getattr(getattr(event, "_value", None), "size", None)
    return None


# -- interval algebra (shared with the timeline projection) -------------------
def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Sorted union of ``[a, b)`` intervals with overlaps coalesced."""
    out: List[Interval] = []
    for a, b in sorted(intervals):
        if out and a <= out[-1][1]:
            if b > out[-1][1]:
                out[-1] = (out[-1][0], b)
        else:
            out.append((a, b))
    return out


def intervals_total(intervals: Iterable[Interval]) -> float:
    """Total measure of an interval set (overlaps merged)."""
    return sum(b - a for a, b in merge_intervals(intervals))


def spans_from_monitor_trace(monitors) -> List[Span]:
    """Detached spans for a monitor hub's cpu/disk trace records.

    Device records are logged at completion carrying their duration, so
    each becomes a span ``[t - seconds, t)`` on the node's track.  This
    is the bridge the :class:`~repro.metrics.timeline.Timeline`
    projection is built on.
    """
    spans: List[Span] = []
    for sid, rec in enumerate(monitors.trace):
        if rec.category not in ("cpu", "disk"):
            continue
        seconds = float(rec.data.get("seconds", 0.0))
        if seconds <= 0:
            continue
        node = rec.detail.split(":", 1)[0]
        spans.append(
            Span(
                sid,
                rec.detail,
                rec.time - seconds,
                cat=rec.category,
                track=node,
                end=rec.time,
                attrs=dict(rec.data),
            )
        )
    return spans
