"""Structural validation of exported trace-event JSON.

Shared by ``scripts/check_trace.py`` (the CI trace-smoke job) and the
test suite: a trace a human would debug with must be one Perfetto can
actually load and one whose tree is sound — every span ends at or after
it starts, every ``parent`` sid exists, and a child lies inside its
parent's interval.  The one sanctioned escape is a span the tracer
marked ``detached`` (work its parent stopped waiting for — an abandoned
hedge read, a superseded RPC — that legitimately finishes after the
logical operation ended); a detached child must still *start* inside
its parent.  Stdlib only.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["validate_trace"]

#: Tolerance (microseconds) for containment checks against the rounded
#: ts/dur grid the exporter writes.
EPS_US = 0.01

_REQUIRED = ("ph", "name", "pid", "tid")


def validate_trace(doc: dict) -> List[str]:
    """Return every structural problem found (empty list == valid)."""
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: no traceEvents list"]

    spans: Dict[int, dict] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in _REQUIRED:
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i}: ts is not a number")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                problems.append(f"event {i} ({ev.get('name')!r}): dur missing")
                continue
            if dur < 0:
                problems.append(
                    f"event {i} ({ev.get('name')!r}): ends before it starts"
                    f" (dur {dur})"
                )
            sid = (ev.get("args") or {}).get("sid")
            if sid is not None:
                if sid in spans:
                    problems.append(f"event {i}: duplicate sid {sid}")
                else:
                    spans[sid] = ev

    for sid, ev in spans.items():
        parent_sid = (ev.get("args") or {}).get("parent")
        if parent_sid is None:
            continue
        parent = spans.get(parent_sid)
        if parent is None:
            problems.append(
                f"span sid={sid} ({ev['name']!r}):"
                f" parent sid {parent_sid} does not exist"
            )
            continue
        lo, hi = ev["ts"], ev["ts"] + ev["dur"]
        plo, phi = parent["ts"], parent["ts"] + parent["dur"]
        detached = bool((ev.get("args") or {}).get("detached"))
        end_ok = detached or hi <= phi + EPS_US
        if lo < plo - EPS_US or not end_ok:
            problems.append(
                f"span sid={sid} ({ev['name']!r}) [{lo}, {hi}]us escapes"
                f" parent sid={parent_sid} ({parent['name']!r}) [{plo}, {phi}]us"
            )
    return problems
