"""Chrome/Perfetto trace-event JSON export.

:func:`trace_events` turns a :class:`~repro.obs.span.Tracer` into the
`trace-event format`__ Perfetto and ``chrome://tracing`` load directly:
``"X"`` complete events for spans (``ts``/``dur`` in microseconds),
``"i"`` instant events for marks, and ``"M"`` metadata naming the
lanes.  Drop the file produced by :func:`write_trace` onto
``ui.perfetto.dev`` and every request renders as one thread whose
nested slices are its queue wait, attempts, fences, and fan-out RPCs.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Lane mapping is deterministic: pid 0 is the ``system`` process holding
the named lanes (``serve``, ``faults``, ``autoscale``); each tenant is
a process of its own (pid 1.., sorted by name) and each request a
thread (tid = req_id) inside its tenant.  ``args`` carries the span's
attributes plus its ``sid``/``parent`` ids so validators (and the
critical-path analyzer reading a file back) can rebuild the tree.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .span import Span, Tracer

__all__ = ["trace_events", "trace_document", "write_trace"]

#: pid of the process holding non-request lanes.
SYSTEM_PID = 0
#: Fixed tid per system lane (anything unlisted gets the next free tid).
SYSTEM_LANES = ("serve", "faults", "autoscale")


def _us(t: float) -> float:
    """Seconds -> microseconds, rounded to a stable sub-ns grid."""
    return round(t * 1e6, 3)


class _Lanes:
    """Deterministic (pid, tid) assignment for tracks."""

    def __init__(self, tracer: Tracer):
        self._tenant_pid: Dict[str, int] = {}
        self._system_tid: Dict[str, int] = {
            lane: tid + 1 for tid, lane in enumerate(SYSTEM_LANES)
        }
        self._req_tenant: Dict[int, str] = {
            req_id: root.attrs.get("tenant", "?")
            for req_id, root in tracer.requests.items()
        }
        for tenant in sorted(set(self._req_tenant.values())):
            self._tenant_pid[tenant] = len(self._tenant_pid) + 1

    def assign(self, track) -> tuple:
        if isinstance(track, int):  # a request id
            tenant = self._req_tenant.get(track)
            if tenant is not None:
                return (self._tenant_pid[tenant], track)
            return (SYSTEM_PID, track)
        lane = str(track) if track is not None else "serve"
        tid = self._system_tid.get(lane)
        if tid is None:
            tid = self._system_tid[lane] = len(self._system_tid) + 1
        return (SYSTEM_PID, tid)

    def metadata(self) -> List[dict]:
        events = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": SYSTEM_PID,
                "tid": 0,
                "args": {"name": "system"},
            }
        ]
        for lane, tid in sorted(self._system_tid.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": SYSTEM_PID,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        for tenant, pid in sorted(self._tenant_pid.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"tenant {tenant}"},
                }
            )
        for req_id in sorted(self._req_tenant):
            pid, tid = self.assign(req_id)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"req {req_id}"},
                }
            )
        return events


def _span_args(span: Span) -> dict:
    args = {"sid": span.sid}
    if span.parent is not None:
        args["parent"] = span.parent
    args.update(span.attrs)
    return args


def trace_events(tracer: Tracer) -> List[dict]:
    """The flat trace-event list (metadata first, then spans, instants)."""
    lanes = _Lanes(tracer)
    events = lanes.metadata()
    horizon = max(
        [s.end for s in tracer.spans if s.end is not None]
        + [e.time for e in tracer.instants]
        + [0.0]
    )
    for span in tracer.spans:
        pid, tid = lanes.assign(span.track)
        end = span.end
        args = _span_args(span)
        if end is None:
            # A span left open (a request that never settled) is closed
            # at the horizon and flagged, never silently dropped.
            end = horizon
            args["truncated"] = True
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.cat,
                "ts": _us(span.start),
                "dur": round(_us(end) - _us(span.start), 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for mark in span.events:
            events.append(
                {
                    "ph": "i",
                    "name": mark.name,
                    "cat": span.cat,
                    "ts": _us(mark.time),
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": dict(mark.attrs),
                }
            )
    for mark, track in zip(tracer.instants, tracer._instant_tracks):
        pid, tid = lanes.assign(track)
        events.append(
            {
                "ph": "i",
                "name": mark.name,
                "cat": "instant",
                "ts": _us(mark.time),
                "pid": pid,
                "tid": tid,
                "s": "p",
                "args": dict(mark.attrs),
            }
        )
    return events


def trace_document(tracer: Tracer, meta: Optional[dict] = None) -> dict:
    doc = {
        "traceEvents": trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", **(meta or {})},
    }
    return doc


def write_trace(tracer: Tracer, path, meta: Optional[dict] = None) -> None:
    """Write a Perfetto-loadable JSON file (deterministic bytes)."""
    doc = trace_document(tracer, meta)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
