"""Local relief (3x3 range filter) — terrain roughness.

A standard DEM derivative used when establishing digital elevation
models (paper Section III-C: "digital evaluation model establishment"):
each cell's local relief is the elevation range over its 3x3
neighbourhood, ``max - min`` including the cell itself.  8-neighbour
dependence, replicate edges.
"""

from __future__ import annotations

import numpy as np

from .base import RowBlockKernel, default_registry
from .pattern import DependencePattern
from .stencil import neighbor_stack, pad_rows


class ReliefKernel(RowBlockKernel):
    """3x3 elevation range (local relief)."""

    name = "relief"
    description = (
        "Terrain roughness operator: the elevation range (max - min) over"
        " each cell's 3x3 neighbourhood, used in DEM quality assessment"
    )
    domain = "GIS / Terrain Analysis"

    def pattern(self) -> DependencePattern:
        return DependencePattern.eight_neighbor(self.name)

    def apply_rows(self, block: np.ndarray) -> np.ndarray:
        p = pad_rows(block, fill="edge")
        stack = neighbor_stack(p)
        hi = np.maximum(stack.max(axis=0), block)
        lo = np.minimum(stack.min(axis=0), block)
        return hi - lo


default_registry.register(ReliefKernel())
