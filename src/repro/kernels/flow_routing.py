"""Flow routing (D8 single flow direction) — paper Table I, Fig. 1.

For every cell, compare its elevation with its eight neighbours and
emit the direction of the minimum neighbour ("find out the element with
the minimum value as the flow direction").  Direction codes are
1..8 in NW, N, NE, W, E, SW, S, SE order (:data:`D8_OFFSETS`); 0 marks
a pit/flat cell whose neighbours are all at least as high.  Ties break
toward the lowest code (NW first), deterministically.

Out-of-map neighbours are padded with ``+inf`` so border cells never
route off the raster.
"""

from __future__ import annotations

import numpy as np

from .base import RowBlockKernel, default_registry
from .pattern import DependencePattern
from .stencil import neighbor_stack, pad_rows


class FlowRoutingKernel(RowBlockKernel):
    """D8 single-flow-direction over an elevation raster."""

    name = "flow-routing"
    description = (
        "Basic operation of terrain analysis application from GIS. It produces"
        " distinctive spatial and statistical patterns depending on the maximum"
        " number of downslope cells to which flow could be directed"
    )
    domain = "GIS / Terrain Analysis"

    def pattern(self) -> DependencePattern:
        return DependencePattern.eight_neighbor(self.name)

    def apply_rows(self, block: np.ndarray) -> np.ndarray:
        padded = pad_rows(block, fill=np.inf)
        stack = neighbor_stack(padded)
        idx = stack.argmin(axis=0)  # ndarray method: skips the np.argmin wrapper
        lowest = np.take_along_axis(stack, idx[None, ...], axis=0)[0]
        return np.where(lowest < block, (idx + 1).astype(np.float64), 0.0)


default_registry.register(FlowRoutingKernel())
