"""Data-dependence patterns (paper Section III-B, "Kernel Features").

A pattern describes which data elements an operator needs in order to
process one element, as signed offsets in *element index* space.  The
paper records patterns in a small text format::

    Name:flow-routing
    Dependence: -imgWidth+1, -imgWidth, -imgWidth-1, -1, 1,
                imgWidth-1, imgWidth, imgWidth+1

Offsets may reference the symbolic raster width ``imgWidth`` because a
file is a flat byte array and the raster's row stride is only known per
file.  Internally each offset is an :class:`OffsetTerm` —
``width_coef * imgWidth + const`` — resolved against a concrete width
when a file is bound.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import PatternParseError

_WIDTH_SYMBOL = "imgWidth"

#: One signed term of an offset expression: optional coefficient times
#: imgWidth, or a bare integer.
_TERM_RE = re.compile(
    r"\s*(?P<sign>[+-]?)\s*(?:(?P<coef>\d+)\s*\*?\s*(?=imgWidth))?(?P<what>imgWidth|\d+)\s*"
)


@dataclass(frozen=True, order=True)
class OffsetTerm:
    """A symbolic element offset: ``width_coef * imgWidth + const``."""

    width_coef: int
    const: int

    def resolve(self, width: int) -> int:
        return self.width_coef * width + self.const

    def to_text(self) -> str:
        parts: List[str] = []
        if self.width_coef:
            if self.width_coef == 1:
                parts.append(_WIDTH_SYMBOL)
            elif self.width_coef == -1:
                parts.append(f"-{_WIDTH_SYMBOL}")
            else:
                parts.append(f"{self.width_coef}*{_WIDTH_SYMBOL}")
        if self.const or not parts:
            if parts:
                parts.append(f"{'+' if self.const >= 0 else '-'}{abs(self.const)}")
            else:
                parts.append(str(self.const))
        return "".join(parts)


def _parse_offset(text: str) -> OffsetTerm:
    """Parse one offset expression like ``-imgWidth+1`` or ``-3``."""
    pos = 0
    width_coef = 0
    const = 0
    seen_any = False
    stripped = text.strip()
    if not stripped:
        raise PatternParseError("empty offset expression")
    while pos < len(stripped):
        match = _TERM_RE.match(stripped, pos)
        if match is None or match.end() == pos:
            raise PatternParseError(f"cannot parse offset {text!r} at {stripped[pos:]!r}")
        sign = -1 if match.group("sign") == "-" else 1
        if match.group("sign") == "" and seen_any:
            raise PatternParseError(f"missing sign between terms in {text!r}")
        what = match.group("what")
        coef_text = match.group("coef")
        if what == _WIDTH_SYMBOL:
            width_coef += sign * (int(coef_text) if coef_text else 1)
        else:
            if coef_text:
                raise PatternParseError(f"unexpected coefficient in {text!r}")
            const += sign * int(what)
        seen_any = True
        pos = match.end()
    return OffsetTerm(width_coef, const)


class DependencePattern:
    """A named set of dependence offsets for one operator."""

    def __init__(self, name: str, terms: Iterable[OffsetTerm]):
        self.name = name
        # Deterministic order; duplicates removed.
        self.terms: Tuple[OffsetTerm, ...] = tuple(sorted(set(terms)))

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_offsets(cls, name: str, offsets: Sequence[int]) -> "DependencePattern":
        """Pattern from concrete (non-symbolic) element offsets."""
        return cls(name, (OffsetTerm(0, int(o)) for o in offsets))

    @classmethod
    def eight_neighbor(cls, name: str) -> "DependencePattern":
        """The paper's flagship pattern: all 8 raster neighbours."""
        terms = [
            OffsetTerm(dr, dc)
            for dr in (-1, 0, 1)
            for dc in (-1, 0, 1)
            if not (dr == 0 and dc == 0)
        ]
        return cls(name, terms)

    @classmethod
    def four_neighbor(cls, name: str) -> "DependencePattern":
        return cls(
            name,
            [OffsetTerm(-1, 0), OffsetTerm(1, 0), OffsetTerm(0, -1), OffsetTerm(0, 1)],
        )

    @classmethod
    def stride(cls, name: str, stride: int) -> "DependencePattern":
        """The two-element ±stride pattern of the paper's Fig. 6."""
        return cls(name, [OffsetTerm(0, -stride), OffsetTerm(0, stride)])

    @classmethod
    def independent(cls, name: str) -> "DependencePattern":
        """No dependence — the ideal active-storage access pattern."""
        return cls(name, [])

    # -- resolution ----------------------------------------------------------------
    def offsets(self, width: int) -> np.ndarray:
        """Concrete element offsets for a raster of ``width`` columns."""
        if width <= 0 and any(t.width_coef for t in self.terms):
            raise PatternParseError(
                f"pattern {self.name!r} is width-dependent but width={width!r}"
            )
        return np.array(
            sorted(t.resolve(width) for t in self.terms), dtype=np.int64
        )

    def reach(self, width: int) -> int:
        """Maximum absolute offset — how far dependent data can be."""
        offs = self.offsets(width)
        return int(np.abs(offs).max()) if offs.size else 0

    def reach_before(self, width: int) -> int:
        offs = self.offsets(width)
        neg = offs[offs < 0]
        return int(-neg.min()) if neg.size else 0

    def reach_after(self, width: int) -> int:
        offs = self.offsets(width)
        pos = offs[offs > 0]
        return int(pos.max()) if pos.size else 0

    @property
    def is_independent(self) -> bool:
        return not self.terms

    def halo_rows(self) -> int:
        """Conservative dependence reach in raster rows.

        Per term: |width coefficient| rows, plus one more when the term
        has a constant part that can spill across a row boundary (e.g.
        ``-imgWidth-1`` reaches two rows up when processing column 0,
        while a bare ``-1`` reaches at most one row up)."""
        if not self.terms:
            return 0
        return max(
            abs(t.width_coef) + (1 if t.const else 0) for t in self.terms
        )

    # -- (de)serialisation in the paper's record format ----------------------
    def to_text(self) -> str:
        offsets = ", ".join(t.to_text() for t in self.terms)
        return f"Name:{self.name}\nDependence: {offsets}\n"

    @classmethod
    def parse(cls, text: str) -> List["DependencePattern"]:
        """Parse one or more records in the paper's text format."""
        patterns: List[DependencePattern] = []
        name: str | None = None
        pending_deps: str | None = None

        def flush() -> None:
            nonlocal name, pending_deps
            if name is None:
                return
            deps = (pending_deps or "").strip()
            terms = (
                [_parse_offset(tok) for tok in deps.split(",") if tok.strip()]
                if deps
                else []
            )
            patterns.append(cls(name, terms))
            name, pending_deps = None, None

        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            lowered = line.lower()
            if lowered.startswith("name:"):
                flush()
                name = line[len("name:"):].strip()
                if not name:
                    raise PatternParseError("record with empty operator name")
            elif lowered.startswith("dependence:"):
                if name is None:
                    raise PatternParseError("Dependence: before any Name:")
                pending_deps = line[len("dependence:"):]
            elif name is not None and pending_deps is not None:
                # Continuation line of a wrapped Dependence list.
                pending_deps += " " + line
            else:
                raise PatternParseError(f"unexpected line {raw_line!r}")
        flush()
        if not patterns:
            raise PatternParseError("no records found")
        return patterns

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DependencePattern)
            and self.name == other.name
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.name, self.terms))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DependencePattern {self.name!r} terms={len(self.terms)}>"
