"""3x3 median filter — the paper's Section I example from Medical Image
Processing ("median filter ... always require[s] eight neighbor data
items to process each data element").

Replicate edge handling; results match
``scipy.ndimage.median_filter(size=3, mode='nearest')``.
"""

from __future__ import annotations

import numpy as np

from .base import RowBlockKernel, default_registry
from .pattern import DependencePattern
from .stencil import pad_rows


class MedianFilterKernel(RowBlockKernel):
    """3x3 median smoothing (impulse-noise removal)."""

    name = "median"
    description = (
        "Basic operation of medical image processing; replaces each element"
        " with the median of its 3x3 neighbourhood to remove impulse noise"
    )
    domain = "Medical Image Processing"

    def pattern(self) -> DependencePattern:
        return DependencePattern.eight_neighbor(self.name)

    def apply_rows(self, block: np.ndarray) -> np.ndarray:
        p = pad_rows(block, fill="edge")
        rows, cols = block.shape
        stack = np.empty((9, rows, cols), dtype=np.float64)
        idx = 0
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                stack[idx] = p[1 + dr : 1 + dr + rows, 1 + dc : 1 + dc + cols]
                idx += 1
        return np.median(stack, axis=0)


default_registry.register(MedianFilterKernel())
