"""4-neighbour Laplacian — the paper's *other* important pattern class.

Section III-C: "the most useful data dependence patterns are 4-neighbor
and 8-neighbor patterns".  The five-point Laplacian is the canonical
4-neighbour operator (edge detection, one explicit heat-diffusion
step)::

    out = n + s + e + w - 4 * centre

Replicate edge handling, so border cells see a zero contribution from
the padded direction (the padded neighbour equals the border cell).
Having a genuinely 4-neighbour kernel in the registry exercises the
narrower dependence record through the predictor, the optimizer and the
schemes.
"""

from __future__ import annotations

import numpy as np

from .base import RowBlockKernel, default_registry
from .pattern import DependencePattern
from .stencil import pad_rows


class LaplaceKernel(RowBlockKernel):
    """Five-point Laplacian over a raster."""

    name = "laplace"
    description = (
        "Five-point (4-neighbour) Laplacian used for edge detection and"
        " explicit diffusion steps in image processing and terrain analysis"
    )
    domain = "Signal / Image Processing"

    def pattern(self) -> DependencePattern:
        return DependencePattern.four_neighbor(self.name)

    def apply_rows(self, block: np.ndarray) -> np.ndarray:
        p = pad_rows(block, fill="edge")
        rows, cols = block.shape
        n = p[0:rows, 1 : 1 + cols]
        s = p[2 : 2 + rows, 1 : 1 + cols]
        w = p[1 : 1 + rows, 0:cols]
        e = p[1 : 1 + rows, 2 : 2 + cols]
        return n + s + w + e - 4.0 * block


default_registry.register(LaplaceKernel())
