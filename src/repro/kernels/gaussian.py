"""2-D Gaussian filter — paper Table I.

"Basic operation of signal and medical image processing. It takes the
raw data as input and output the same size smoothed data."  The classic
3x3 binomial approximation of a Gaussian (sigma ~ 0.85)::

    1/16 * | 1 2 1 |
           | 2 4 2 |
           | 1 2 1 |

with replicate ("nearest") edge handling, so results match
``scipy.ndimage.correlate(..., mode='nearest')`` exactly.
"""

from __future__ import annotations

import numpy as np

from .base import RowBlockKernel, default_registry
from .pattern import DependencePattern
from .stencil import pad_rows


class GaussianFilterKernel(RowBlockKernel):
    """3x3 binomial Gaussian smoothing."""

    name = "gaussian"
    description = (
        "Basic operation of signal and medical image processing. It takes the"
        " raw data as input and output the same size smoothed data"
    )
    domain = "Medical Image Processing"

    #: Filter taps, row-major.
    WEIGHTS = np.array(
        [[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]]
    ) / 16.0

    def pattern(self) -> DependencePattern:
        return DependencePattern.eight_neighbor(self.name)

    def apply_rows(self, block: np.ndarray) -> np.ndarray:
        p = pad_rows(block, fill="edge")
        rows, cols = block.shape
        out = np.zeros_like(block)
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                w = self.WEIGHTS[dr + 1, dc + 1]
                out += w * p[1 + dr : 1 + dr + rows, 1 + dc : 1 + dc + cols]
        return out


default_registry.register(GaussianFilterKernel())
