"""Stencil machinery: window assembly and edge-rule padding.

Offloaded kernels operate on a *contiguous element range* of a
row-major raster plus the halo elements around it (exactly the bytes an
active-storage server holds locally, or fetched as dependent data).
The helpers here lift that flat window back into 2-D row blocks so the
kernels can run fully vectorised NumPy, then slice out precisely the
core outputs.

Correctness argument (used throughout tests): given a core range
``[first, end)`` and a halo covering reach ``R = max |offset|``, every
dependent element of every core output lies inside the supplied window,
so the NaN filler used for cells outside the window is never read when
producing core outputs.  At the true raster borders, kernels see one
ring of padding built by :func:`pad_rows` with the kernel's edge rule
(replicate for smoothing kernels, +inf for flow routing so out-of-map
neighbours are never selected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import KernelError


@dataclass(frozen=True)
class Window:
    """A flat element window around a core range of a raster."""

    data: np.ndarray  # 1-D elements covering [lo, hi)
    lo: int  # first element index covered
    first: int  # first core element
    end: int  # one past the last core element
    width: int  # raster width (columns)
    n_elements: int  # total elements in the raster

    def __post_init__(self) -> None:
        if not (0 <= self.lo <= self.first <= self.end <= self.lo + self.data.size):
            raise KernelError(
                f"inconsistent window: lo={self.lo} first={self.first}"
                f" end={self.end} size={self.data.size}"
            )
        if self.n_elements % self.width != 0:
            raise KernelError(
                f"raster of {self.n_elements} elements is not a multiple of"
                f" width {self.width}"
            )

    @property
    def hi(self) -> int:
        return self.lo + self.data.size


def assemble_rows(window: Window) -> Tuple[np.ndarray, int]:
    """Lift a flat window into full raster rows.

    Returns ``(block, r0)`` where ``block`` has shape
    ``(rows, width)`` covering raster rows ``r0 .. r0+rows-1`` and
    cells outside the window are NaN.
    """
    width = window.width
    r0 = window.lo // width
    r1 = (window.hi - 1) // width if window.hi > window.lo else r0
    rows = r1 - r0 + 1
    block = np.full(rows * width, np.nan, dtype=np.float64)
    start = window.lo - r0 * width
    block[start : start + window.data.size] = window.data
    return block.reshape(rows, width), r0


def pad_rows(block: np.ndarray, fill: str | float = "edge") -> np.ndarray:
    """Surround a row block with a one-cell ring.

    ``fill='edge'`` replicates the border (matching
    ``scipy.ndimage mode='nearest'``); a float pads with that constant
    (flow routing uses ``+inf`` so padding never wins an argmin).
    """
    if block.ndim != 2:
        raise KernelError(f"pad_rows expects 2-D, got shape {block.shape}")
    # Hand-rolled ring (np.pad equivalent, minus its per-call overhead —
    # this runs once per window per kernel application).  Padding only
    # copies values, so the result is bit-identical to np.pad.
    rows, cols = block.shape
    out = np.empty((rows + 2, cols + 2), dtype=block.dtype)
    out[1:-1, 1:-1] = block
    if fill == "edge":
        out[0, 1:-1] = block[0]
        out[-1, 1:-1] = block[-1]
        out[:, 0] = out[:, 1]
        out[:, -1] = out[:, -2]
    else:
        v = float(fill)
        out[0, :] = v
        out[-1, :] = v
        out[1:-1, 0] = v
        out[1:-1, -1] = v
    return out


def neighbor_stack(padded: np.ndarray) -> np.ndarray:
    """The 8 neighbour views of a padded block, shape ``(8, rows, cols)``.

    Order matches :data:`D8_OFFSETS`: NW, N, NE, W, E, SW, S, SE.
    """
    core = padded[1:-1, 1:-1]
    rows, cols = core.shape
    out = np.empty((8, rows, cols), dtype=padded.dtype)
    idx = 0
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            out[idx] = padded[1 + dr : 1 + dr + rows, 1 + dc : 1 + dc + cols]
            idx += 1
    return out


#: (dr, dc) for each slot of :func:`neighbor_stack` / D8 direction codes.
D8_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
)


def extract_core(rows_out: np.ndarray, r0: int, window: Window) -> np.ndarray:
    """Slice the core range ``[first, end)`` out of whole-row output."""
    flat = rows_out.reshape(-1)
    lo = window.first - r0 * window.width
    hi = window.end - r0 * window.width
    if lo < 0 or hi > flat.size:
        raise KernelError(
            f"core [{window.first}, {window.end}) escapes row block"
            f" (r0={r0}, rows={rows_out.shape[0]})"
        )
    return flat[lo:hi].copy()


def window_bounds(
    first: int, count: int, reach_before: int, reach_after: int, n_elements: int
) -> Tuple[int, int]:
    """Clamp ``[first - reach_before, first + count + reach_after)`` to the file."""
    if first < 0 or count < 0 or first + count > n_elements:
        raise KernelError(
            f"core range ({first}, {count}) outside raster of {n_elements} elements"
        )
    return max(0, first - reach_before), min(n_elements, first + count + reach_after)
