"""Processing kernels and their dependence descriptors.

Importing this package registers the paper's kernels (flow-routing,
flow-accumulation, gaussian, median, slope, laplace, relief) into
:data:`default_registry`.
"""

from .base import Kernel, KernelRegistry, RowBlockKernel, default_registry
from .flow_accumulation import FlowAccumulationKernel, accumulate_full
from .flow_routing import FlowRoutingKernel
from .gaussian import GaussianFilterKernel
from .laplace import LaplaceKernel
from .median import MedianFilterKernel
from .pattern import DependencePattern, OffsetTerm
from .reductions import (
    HistogramReduction,
    ReductionKernel,
    ReductionRegistry,
    StatsReduction,
    ThresholdCountReduction,
    default_reductions,
)
from .relief import ReliefKernel
from .slope import SlopeKernel
from .stencil import (
    D8_OFFSETS,
    Window,
    assemble_rows,
    extract_core,
    neighbor_stack,
    pad_rows,
    window_bounds,
)

__all__ = [
    "D8_OFFSETS",
    "DependencePattern",
    "FlowAccumulationKernel",
    "FlowRoutingKernel",
    "GaussianFilterKernel",
    "HistogramReduction",
    "Kernel",
    "LaplaceKernel",
    "KernelRegistry",
    "MedianFilterKernel",
    "OffsetTerm",
    "ReliefKernel",
    "ReductionKernel",
    "ReductionRegistry",
    "RowBlockKernel",
    "StatsReduction",
    "ThresholdCountReduction",
    "SlopeKernel",
    "Window",
    "accumulate_full",
    "assemble_rows",
    "default_reductions",
    "default_registry",
    "extract_core",
    "neighbor_stack",
    "pad_rows",
    "window_bounds",
]
