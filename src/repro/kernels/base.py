"""Kernel abstraction and registry (paper Fig. 2, "Processing Kernels").

Kernels are "designed as separate components and can run independently"
— each one couples:

* a :class:`~repro.kernels.pattern.DependencePattern` (its Kernel
  Features record, used by the bandwidth predictor), and
* a pure NumPy computation over an element window (used by every
  scheme, so TS / NAS / DAS provably produce identical outputs).

The registry maps operator names to kernel instances; the Active
Storage Client and the AS helper processes resolve kernels by name,
exactly like the paper's kernel-features description file keyed by
``Name:``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..errors import KernelError, UnknownKernelError
from .pattern import DependencePattern
from .stencil import Window, assemble_rows, extract_core, window_bounds


class Kernel(ABC):
    """One data-analysis operator."""

    #: Registry key and Kernel Features record name.
    name: str = ""
    #: One-line description (used to regenerate the paper's Table I).
    description: str = ""
    #: Application domain, for Table I ("GIS", "Medical Image Processing", ...).
    domain: str = ""

    @abstractmethod
    def pattern(self) -> DependencePattern:
        """The operator's dependence pattern (symbolic in imgWidth)."""

    @abstractmethod
    def apply_window(self, window: Window) -> np.ndarray:
        """Compute outputs for the window's core range.

        Returns a 1-D array of ``window.end - window.first`` elements
        (float64).  Implementations must only read window cells that
        the dependence pattern declares."""

    # -- derived helpers -------------------------------------------------------
    def reach_before(self, width: int) -> int:
        return self.pattern().reach_before(width)

    def reach_after(self, width: int) -> int:
        return self.pattern().reach_after(width)

    def apply_range(
        self,
        full: np.ndarray,
        first: int,
        count: int,
        width: Optional[int] = None,
    ) -> np.ndarray:
        """Convenience: run the kernel on a core range of an in-memory
        raster (tests and the sequential reference path use this)."""
        flat = np.ascontiguousarray(full, dtype=np.float64).reshape(-1)
        if width is None:
            if full.ndim != 2:
                raise KernelError("width is required for non-2-D input")
            width = full.shape[1]
        lo, hi = window_bounds(
            first, count, self.reach_before(width), self.reach_after(width), flat.size
        )
        window = Window(
            data=flat[lo:hi],
            lo=lo,
            first=first,
            end=first + count,
            width=width,
            n_elements=flat.size,
        )
        return self.apply_window(window)

    def reference(self, full: np.ndarray) -> np.ndarray:
        """Whole-raster sequential output (the ground truth in tests)."""
        if full.ndim != 2:
            raise KernelError("reference expects a 2-D raster")
        out = self.apply_range(full, 0, full.size, width=full.shape[1])
        return out.reshape(full.shape)

    def features_record(self) -> str:
        """The operator's Kernel Features record (paper text format)."""
        return self.pattern().to_text()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Kernel {self.name!r}>"


class RowBlockKernel(Kernel):
    """Base for kernels computed on 2-D row blocks with an edge ring.

    Subclasses implement :meth:`apply_rows` over a row block (NaN
    outside the window, never read for core outputs per the argument in
    :mod:`repro.kernels.stencil`); this base lifts flat windows into
    blocks and slices the core back out.
    """

    @abstractmethod
    def apply_rows(self, block: np.ndarray) -> np.ndarray:
        """Whole-block computation; same shape in and out."""

    def apply_window(self, window: Window) -> np.ndarray:
        block, r0 = assemble_rows(window)
        with np.errstate(invalid="ignore"):
            rows_out = self.apply_rows(block)
        if rows_out.shape != block.shape:
            raise KernelError(
                f"{self.name}: apply_rows changed shape"
                f" {block.shape} -> {rows_out.shape}"
            )
        return extract_core(rows_out, r0, window)


class KernelRegistry:
    """Name -> kernel instance."""

    def __init__(self) -> None:
        self._kernels: Dict[str, Kernel] = {}

    def register(self, kernel: Kernel) -> Kernel:
        if not kernel.name:
            raise KernelError(f"kernel {kernel!r} has no name")
        if kernel.name in self._kernels:
            raise KernelError(f"kernel {kernel.name!r} already registered")
        self._kernels[kernel.name] = kernel
        return kernel

    def get(self, name: str) -> Kernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise UnknownKernelError(
                f"unknown kernel {name!r}; registered: {sorted(self._kernels)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._kernels)

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self._kernels.values())

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def __len__(self) -> int:
        return len(self._kernels)

    def features_file(self) -> str:
        """All registered Kernel Features records, concatenated — the
        content of the paper's descriptor file."""
        return "\n".join(self._kernels[n].features_record() for n in self.names())


#: Process-wide default registry; the concrete kernels register here on import.
default_registry = KernelRegistry()
