"""Surface slope analysis (Horn's method) — listed in the paper's
Section III-C among the representative 8-neighbour operations
("surface slop analysis").

Gradients by Horn's third-order finite differences over the 3x3
neighbourhood; output is slope magnitude ``sqrt(gx^2 + gy^2)`` with a
unit cell size.  Replicate edge handling.
"""

from __future__ import annotations

import numpy as np

from .base import RowBlockKernel, default_registry
from .pattern import DependencePattern
from .stencil import pad_rows


class SlopeKernel(RowBlockKernel):
    """Horn slope magnitude over an elevation raster."""

    name = "slope"
    description = (
        "Terrain analysis operation computing each cell's slope magnitude"
        " from Horn's gradient over the 3x3 neighbourhood"
    )
    domain = "GIS / Terrain Analysis"

    def pattern(self) -> DependencePattern:
        return DependencePattern.eight_neighbor(self.name)

    def apply_rows(self, block: np.ndarray) -> np.ndarray:
        p = pad_rows(block, fill="edge")
        rows, cols = block.shape

        def view(dr: int, dc: int) -> np.ndarray:
            return p[1 + dr : 1 + dr + rows, 1 + dc : 1 + dc + cols]

        nw, n, ne = view(-1, -1), view(-1, 0), view(-1, 1)
        w, e = view(0, -1), view(0, 1)
        sw, s, se = view(1, -1), view(1, 0), view(1, 1)
        gx = ((ne + 2.0 * e + se) - (nw + 2.0 * w + sw)) / 8.0
        gy = ((sw + 2.0 * s + se) - (nw + 2.0 * n + ne)) / 8.0
        return np.sqrt(gx * gx + gy * gy)


default_registry.register(SlopeKernel())
