"""Reduction kernels: operators whose output is tiny.

The classic active-storage win (Riedel et al.'s scan workloads, cited
in the paper's related work) is an operator that reads the whole
dataset but returns a small result — offloading it replaces a
dataset-sized transfer with a few bytes per server.  These operators
are dependence-free (each element is consumed independently), i.e. the
paper's "desired applications' access pattern for active storage".

A :class:`ReductionKernel` provides:

* ``partial(values)`` — the per-server contribution over its local
  elements (any picklable payload);
* ``combine(a, b)`` — associative/commutative merge of contributions;
* ``finalize(acc)`` — turn the merged accumulator into the result;
* ``result_bytes`` — the on-wire size of one contribution.

Each also exposes ``reference(array)`` for verification.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterator, List

import numpy as np

from ..errors import KernelError, UnknownKernelError
from .pattern import DependencePattern


class ReductionKernel(ABC):
    """A dataset -> small-value operator."""

    name: str = ""
    description: str = ""
    #: Wire size of one per-server contribution, bytes.
    result_bytes: int = 64

    def pattern(self) -> DependencePattern:
        """Reductions consume elements independently."""
        return DependencePattern.independent(self.name)

    @abstractmethod
    def partial(self, values: np.ndarray) -> Any:
        """Contribution of one contiguous element range."""

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Merge two contributions (associative, commutative)."""

    def finalize(self, acc: Any) -> Any:
        """Post-process the merged accumulator (default: identity)."""
        return acc

    def reference(self, array: np.ndarray) -> Any:
        """Single-pass sequential result, for verification."""
        return self.finalize(self.partial(np.ascontiguousarray(array).reshape(-1)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ReductionKernel {self.name!r}>"


class StatsReduction(ReductionKernel):
    """min / max / sum / count / sum-of-squares (mean and variance)."""

    name = "stats"
    description = (
        "Dataset summary statistics (min, max, mean, variance) computed"
        " in one pass over the local elements of every storage server"
    )
    result_bytes = 5 * 8

    def partial(self, values: np.ndarray) -> Dict[str, float]:
        v = values.reshape(-1)
        if v.size == 0:
            return {"min": np.inf, "max": -np.inf, "sum": 0.0, "sq": 0.0, "n": 0}
        return {
            "min": float(v.min()),
            "max": float(v.max()),
            "sum": float(v.sum()),
            "sq": float(np.square(v).sum()),
            "n": int(v.size),
        }

    def combine(self, a: Dict[str, float], b: Dict[str, float]) -> Dict[str, float]:
        return {
            "min": min(a["min"], b["min"]),
            "max": max(a["max"], b["max"]),
            "sum": a["sum"] + b["sum"],
            "sq": a["sq"] + b["sq"],
            "n": a["n"] + b["n"],
        }

    def finalize(self, acc: Dict[str, float]) -> Dict[str, float]:
        n = max(1, acc["n"])
        mean = acc["sum"] / n
        out = dict(acc)
        out["mean"] = mean
        out["var"] = max(0.0, acc["sq"] / n - mean * mean)
        return out


class HistogramReduction(ReductionKernel):
    """Fixed-range histogram with a configurable bin count."""

    name = "histogram"
    description = (
        "Fixed-range histogram of the dataset, accumulated per server and"
        " merged bin-wise at the client"
    )

    def __init__(self, lo: float = 0.0, hi: float = 1.0, bins: int = 64):
        if not (hi > lo) or bins <= 0:
            raise KernelError(f"invalid histogram range/bins ({lo}, {hi}, {bins})")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.result_bytes = 8 * self.bins

    def partial(self, values: np.ndarray) -> np.ndarray:
        counts, _ = np.histogram(
            values.reshape(-1), bins=self.bins, range=(self.lo, self.hi)
        )
        return counts.astype(np.int64)

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b


class ThresholdCountReduction(ReductionKernel):
    """How many elements exceed a threshold (selection selectivity)."""

    name = "count-above"
    description = (
        "Selective scan: the number of elements strictly above a threshold"
    )
    result_bytes = 8

    def __init__(self, threshold: float = 0.5):
        self.threshold = float(threshold)

    def partial(self, values: np.ndarray) -> int:
        return int((values.reshape(-1) > self.threshold).sum())

    def combine(self, a: int, b: int) -> int:
        return a + b


class ReductionRegistry:
    """Name -> reduction kernel instance."""

    def __init__(self) -> None:
        self._kernels: Dict[str, ReductionKernel] = {}

    def register(self, kernel: ReductionKernel) -> ReductionKernel:
        if not kernel.name:
            raise KernelError("reduction kernel has no name")
        if kernel.name in self._kernels:
            raise KernelError(f"reduction {kernel.name!r} already registered")
        self._kernels[kernel.name] = kernel
        return kernel

    def get(self, name: str) -> ReductionKernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise UnknownKernelError(
                f"unknown reduction {name!r}; registered: {sorted(self._kernels)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._kernels)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def __iter__(self) -> Iterator[ReductionKernel]:
        return iter(self._kernels.values())


#: Process-wide default reduction registry.
default_reductions = ReductionRegistry()
default_reductions.register(StatsReduction())
default_reductions.register(HistogramReduction())
default_reductions.register(ThresholdCountReduction())
