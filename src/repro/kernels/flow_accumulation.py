"""Flow accumulation — paper Table I.

"It calculates accumulated flow as the accumulated weight of all cells
flowing into each downslope cell."  The operation consumes the
direction raster produced by :mod:`~repro.kernels.flow_routing` (the
paper: "the flow-accumulation operation always follows the flow-routing
operation ... and consumes this intermediate image data"), and shares
the 8-neighbour dependence pattern.

This kernel computes one accumulation *pass*: each cell's own unit
weight plus the weight of every immediate neighbour whose D8 direction
points at the cell.  (Transitive basin accumulation iterates this pass
to a fixed point; :func:`accumulate_full` below provides that reference
for the extended tests.  A single local pass is what maps onto active
storage — it is exactly the 8-neighbour-dependent operation the paper
offloads and measures.)
"""

from __future__ import annotations

import numpy as np

from .base import RowBlockKernel, default_registry
from .pattern import DependencePattern
from .stencil import D8_OFFSETS, neighbor_stack, pad_rows


class FlowAccumulationKernel(RowBlockKernel):
    """One inflow-accumulation pass over a D8 direction raster."""

    name = "flow-accumulation"
    description = (
        "Another basic operation of terrain analysis application from GIS. It"
        " calculates accumulated flow as the accumulated weight of all cells"
        " flowing into each downslope cell in the output raster."
    )
    domain = "GIS / Terrain Analysis"

    def pattern(self) -> DependencePattern:
        return DependencePattern.eight_neighbor(self.name)

    def apply_rows(self, block: np.ndarray) -> np.ndarray:
        # A neighbour in slot k sits at offset (dr, dc) from the centre;
        # it flows INTO the centre iff its direction code points back at
        # (-dr, -dc).  D8_OFFSETS is antisymmetric around its middle, so
        # the opposite of slot k is slot 7-k, i.e. code 8-k.
        padded = pad_rows(block, fill=0.0)  # outside cells contribute nothing
        stack = neighbor_stack(padded)
        out = np.ones_like(block)
        for k in range(8):
            out += (stack[k] == float(8 - k)).astype(np.float64)
        return out


def accumulate_full(directions: np.ndarray, max_iters: int | None = None) -> np.ndarray:
    """Transitive (basin-wide) flow accumulation, as a reference.

    Propagates each cell's accumulated weight along its D8 direction
    until a fixed point: ``acc[c] = 1 + sum(acc[n] for n flowing to c)``.
    Runs in O(longest flow path) sweeps; direction rasters from
    :class:`FlowRoutingKernel` are acyclic (flow always goes strictly
    downhill), so this terminates.
    """
    rows, cols = directions.shape
    acc = np.ones((rows, cols), dtype=np.float64)
    limit = max_iters if max_iters is not None else rows * cols + 1
    for _ in range(limit):
        nxt = np.ones((rows, cols), dtype=np.float64)
        for k, (dr, dc) in enumerate(D8_OFFSETS):
            # Cells with code k+1 send their accumulation to (r+dr, c+dc).
            senders = directions == float(k + 1)
            if not senders.any():
                continue
            rr, cc = np.nonzero(senders)
            tr, tc = rr + dr, cc + dc
            ok = (tr >= 0) & (tr < rows) & (tc >= 0) & (tc < cols)
            np.add.at(nxt, (tr[ok], tc[ok]), acc[rr[ok], cc[ok]])
        if np.array_equal(nxt, acc):
            return acc
        acc = nxt
    return acc


default_registry.register(FlowAccumulationKernel())
