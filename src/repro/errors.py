"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystem-specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation engine."""


class StopSimulation(SimulationError):
    """Internal signal used to terminate :meth:`Environment.run`."""


class InterruptError(SimulationError):
    """Raised inside a process when it is interrupted by another process.

    The interrupting party may attach an arbitrary ``cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InterruptError(cause={self.cause!r})"


class NetworkError(ReproError):
    """Errors raised by the simulated network fabric."""


class RoutingError(NetworkError):
    """No route between the requested endpoints."""


class NodeDownError(NetworkError):
    """The destination node is offline (failure injection)."""


class LinkDownError(NetworkError):
    """The link between two specific nodes is cut (network partition)."""


class RPCTimeoutError(NetworkError):
    """An RPC outlived its recovery-policy timeout without a reply."""


class PFSError(ReproError):
    """Errors raised by the simulated parallel file system."""


class FileNotFoundInPFS(PFSError):
    """The named file does not exist on the metadata server."""


class FileExistsInPFS(PFSError):
    """Attempt to create a file that already exists."""


class LayoutError(PFSError):
    """Invalid or inconsistent data-distribution layout."""


class StripMissingError(PFSError):
    """A data server was asked for a strip it does not hold."""


class KernelError(ReproError):
    """Errors raised by processing kernels and their descriptors."""


class PatternParseError(KernelError):
    """The kernel-features descriptor text could not be parsed."""


class UnknownKernelError(KernelError):
    """The requested kernel is not present in the registry."""


class ActiveStorageError(ReproError):
    """Errors raised by the active-storage framework (client or server)."""


class OffloadRejectedError(ActiveStorageError):
    """The DAS decision engine rejected the offload request.

    Carries the :class:`~repro.core.decision.OffloadDecision` that
    explains the rejection so callers can fall back to normal I/O.
    """

    def __init__(self, decision: object = None):
        super().__init__(decision)
        self.decision = decision


class ServeError(ReproError):
    """Errors raised by the request-serving layer."""


class AdmissionError(ServeError):
    """A request was submitted in a state the admission path rejects
    outright (unknown tenant, closed system, malformed request)."""


class FaultError(ReproError):
    """Errors raised by the fault-injection subsystem."""


class FaultSpecError(FaultError):
    """A chaos spec string (or FaultPlan construction) is malformed."""


class ScenarioError(ReproError):
    """A scenario spec failed to load, validate, or materialize.

    Loader errors carry the offending spec path in the message
    (``<scenario>: tenants[1].files: ...``) so a bad spec is fixable
    without reading the loader source.
    """


class FleetError(ReproError):
    """Errors raised by the multi-cell fleet layer (repro.fleet)."""


class HarnessError(ReproError):
    """Errors raised by the experiment harness."""


class UnknownExperimentError(HarnessError):
    """The requested experiment id is not registered."""
