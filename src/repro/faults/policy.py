"""Recovery policy: how clients detect and route around failures.

A :class:`RecoveryPolicy` is deliberately *opt-in*: every client keeps
``recovery = None`` by default, in which case the fault-tolerant code
paths are never entered and the simulation is event-for-event identical
to a build without this module.  Attaching a policy enables per-RPC
timeouts, exponential backoff between attempts, replica failover and
(optionally) hedged reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import FaultSpecError


@dataclass(frozen=True)
class RecoveryPolicy:
    """Timeout / retry / hedging knobs for fault-tolerant RPCs.

    ``rpc_timeout``
        Seconds a single attempt may run before it is abandoned and
        counted as :class:`~repro.errors.RPCTimeoutError`.
    ``max_attempts``
        Attempts against the *primary* server before failing over to a
        replica (or giving up when none exists).
    ``backoff`` / ``backoff_factor``
        Exponential backoff between attempts: attempt ``n`` (1-based)
        waits ``backoff * backoff_factor ** (n - 1)`` before retrying.
    ``hedge_delay``
        When set, a read still unanswered after this many seconds
        spawns a duplicate ("hedged") read against a replica; whichever
        copy finishes first wins.  ``None`` disables hedging.
    """

    rpc_timeout: float = 0.25
    max_attempts: int = 2
    backoff: float = 0.02
    backoff_factor: float = 2.0
    hedge_delay: Optional[float] = None

    def __post_init__(self):
        if self.rpc_timeout <= 0:
            raise FaultSpecError(f"rpc_timeout must be > 0, got {self.rpc_timeout!r}")
        if self.max_attempts < 1:
            raise FaultSpecError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.backoff < 0:
            raise FaultSpecError(f"backoff must be >= 0, got {self.backoff!r}")
        if self.backoff_factor < 1.0:
            raise FaultSpecError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.hedge_delay is not None and self.hedge_delay < 0:
            raise FaultSpecError(f"hedge_delay must be >= 0, got {self.hedge_delay!r}")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after the ``attempt``-th failure (1-based)."""
        return self.backoff * self.backoff_factor ** max(0, attempt - 1)
