"""Fault injection and fault tolerance for the simulated platform.

Three planes (see docs/ARCHITECTURE.md, "Fault tolerance"):

* **Injection** — :class:`FaultPlan` (a deterministic schedule of
  crashes, disk degradations and link cuts, buildable in code, from a
  chaos-spec string, or from a seeded RNG) applied by a
  :class:`FaultInjector` process at simulated times.
* **Detection & recovery** — :class:`RecoveryPolicy` configures
  per-RPC timeouts, exponential backoff, optional hedged reads and
  replica failover in ``pfs.client`` / ``core.das_client``.
* **Measurement** — the injector and recovery paths book
  ``faults.*`` counters that :func:`repro.metrics.fault_summary`
  rolls up (availability, failover reads, hedge wins, MTTR).
"""

from .injector import FaultInjector
from .plan import KINDS, FaultEvent, FaultPlan
from .policy import RecoveryPolicy

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "KINDS",
    "RecoveryPolicy",
]
