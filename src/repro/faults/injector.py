"""Fault injector: applies a :class:`~repro.faults.plan.FaultPlan`.

The injector is a plain simulation process.  It sleeps until each
scheduled event's time and then mutates the cluster: ``crash`` brings a
node's NIC down (and drops that server's strip cache — a crashed
machine loses its page cache), ``recover`` brings it back, ``slow`` /
``restore`` scale a disk's streaming throughput, and ``cut`` / ``heal``
partition / repair a link in the fabric.

Everything it does is booked under ``faults.*`` counters, and outage
windows are tracked so :meth:`FaultInjector.mttr` can report the mean
time to repair.  Listeners registered with :meth:`on_event` observe
each applied event — the serving layer uses this to invalidate its
offload decision cache when membership changes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import FaultError
from ..sim import Process
from .plan import FaultEvent, FaultPlan

Listener = Callable[[FaultEvent], None]


class FaultInjector:
    """Applies a fault plan to a live cluster at simulated times."""

    def __init__(self, cluster, plan: FaultPlan, pfs=None):
        self.cluster = cluster
        self.plan = plan
        self.pfs = pfs
        self.monitors = cluster.monitors
        self.applied: List[FaultEvent] = []
        self._listeners: List[Listener] = []
        self._down_since: Dict[str, float] = {}
        self._repair_times: List[float] = []
        self._started = False

    # -- wiring ---------------------------------------------------------------
    def on_event(self, listener: Listener) -> None:
        """Call ``listener(event)`` after each event is applied."""
        self._listeners.append(listener)

    def start(self) -> Optional[Process]:
        """Spawn the injector process (no-op for an empty plan)."""
        if self._started:
            raise FaultError("fault injector already started")
        self._started = True
        if not self.plan:
            return None
        return self.cluster.env.process(self._run(), name="fault-injector")

    # -- the injector process -------------------------------------------------
    def _run(self):
        env = self.cluster.env
        for event in self.plan:
            if event.at > env.now:
                yield env.timeout(event.at - env.now)
            self._apply(event)
            self.applied.append(event)
            for listener in self._listeners:
                listener(event)

    def _apply(self, event: FaultEvent) -> None:
        env = self.cluster.env
        kind = event.kind
        if kind == "crash":
            node = self.cluster.node(event.target)
            if node.is_up:
                node.fail()
                self._down_since[event.target] = env.now
                self.monitors.counter("faults.crashes").add()
                if self.pfs is not None:
                    server = self.pfs.servers.get(event.target)
                    if server is not None and server.cache is not None:
                        server.cache.clear()
        elif kind == "recover":
            node = self.cluster.node(event.target)
            if not node.is_up:
                node.recover()
                went_down = self._down_since.pop(event.target, None)
                if went_down is not None:
                    outage = env.now - went_down
                    self._repair_times.append(outage)
                    self.monitors.counter("faults.downtime_seconds").add(outage)
                self.monitors.counter("faults.recoveries").add()
        elif kind == "slow":
            self.cluster.node(event.target).disk.degrade(event.factor)
            self.monitors.counter("faults.disk_degraded").add()
        elif kind == "restore":
            self.cluster.node(event.target).disk.restore()
            self.monitors.counter("faults.disk_restored").add()
        elif kind == "cut":
            self.cluster.fabric.cut(event.target, event.peer)
            self.monitors.counter("faults.link_cuts").add()
        elif kind == "heal":
            self.cluster.fabric.heal(event.target, event.peer)
            self.monitors.counter("faults.link_heals").add()
        else:  # pragma: no cover - FaultEvent validates kinds
            raise FaultError(f"unknown fault kind {kind!r}")
        self.monitors.log(
            "faults", event.kind, target=event.target, peer=event.peer or ""
        )
        if self.monitors.tracer:
            self.monitors.tracer.instant(
                f"fault.{event.kind}",
                track="faults",
                target=event.target,
                peer=event.peer or None,
            )

    # -- measurement ----------------------------------------------------------
    def mttr(self) -> float:
        """Mean time to repair over completed outages (0 when none)."""
        if not self._repair_times:
            return 0.0
        return sum(self._repair_times) / len(self._repair_times)

    @property
    def repairs(self) -> int:
        return len(self._repair_times)

    @property
    def still_down(self) -> List[str]:
        """Nodes crashed by the plan and not (yet) recovered."""
        return sorted(self._down_since)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultInjector events={len(self.plan)}"
            f" applied={len(self.applied)} repairs={self.repairs}>"
        )
