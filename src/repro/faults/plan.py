"""Deterministic fault schedules.

A :class:`FaultPlan` is an immutable, time-sorted list of
:class:`FaultEvent` records saying *what* breaks (or recovers) *when*.
Plans can be built three ways, all deterministic:

* in code — ``FaultPlan.single_crash("s1", at=2.0, recover_at=4.0)``;
* from a **chaos spec** string (the harness ``--chaos-spec`` flag) —
  ``"crash:s1@2.0;recover:s1@4.0;slow:s2@1.0x0.25;cut:c0-s3@1.0"``;
* from a seeded RNG — ``FaultPlan.random(rng, servers, duration)``.

The plan itself never touches the cluster; a
:class:`~repro.faults.injector.FaultInjector` applies it at simulated
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import FaultSpecError

#: Recognised event kinds.
KINDS = ("crash", "recover", "slow", "restore", "cut", "heal")

_PAIRWISE = frozenset({"cut", "heal"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (or repair).

    ``target`` names a node for ``crash``/``recover``/``slow``/
    ``restore``; for ``cut``/``heal`` the affected link is the pair
    ``(target, peer)``.  ``factor`` is the throughput multiplier for
    ``slow`` (ignored otherwise).
    """

    at: float
    kind: str
    target: str
    peer: Optional[str] = None
    factor: float = 1.0

    def __post_init__(self):
        if self.at < 0:
            raise FaultSpecError(f"fault time must be >= 0, got {self.at!r}")
        if self.kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r} (expected one of {KINDS})"
            )
        if self.kind in _PAIRWISE and not self.peer:
            raise FaultSpecError(f"{self.kind!r} needs a peer node (target-peer)")
        if self.kind not in _PAIRWISE and self.peer:
            raise FaultSpecError(f"{self.kind!r} takes a single target, not a pair")
        if self.kind == "slow" and not 0.0 < self.factor <= 1.0:
            raise FaultSpecError(
                f"slow factor must be in (0, 1], got {self.factor!r}"
            )

    def spec(self) -> str:
        """This event in chaos-spec syntax (parse/format round-trips)."""
        target = f"{self.target}-{self.peer}" if self.peer else self.target
        suffix = f"x{self.factor:g}" if self.kind == "slow" else ""
        return f"{self.kind}:{target}@{self.at:g}{suffix}"


def _parse_clause(clause: str) -> FaultEvent:
    try:
        kind, rest = clause.split(":", 1)
        target, when = rest.rsplit("@", 1)
    except ValueError:
        raise FaultSpecError(
            f"bad chaos clause {clause!r} (expected 'kind:target@time')"
        ) from None
    kind = kind.strip().lower()
    factor = 1.0
    if kind == "slow" and "x" in when:
        when, factor_text = when.split("x", 1)
        try:
            factor = float(factor_text)
        except ValueError:
            raise FaultSpecError(f"bad slow factor in {clause!r}") from None
    try:
        at = float(when)
    except ValueError:
        raise FaultSpecError(f"bad fault time in {clause!r}") from None
    peer = None
    target = target.strip()
    if kind in _PAIRWISE:
        if target.count("-") != 1:
            raise FaultSpecError(
                f"{kind!r} target must be 'a-b' in {clause!r}"
            )
        target, peer = (part.strip() for part in target.split("-"))
    return FaultEvent(at=at, kind=kind, target=target, peer=peer, factor=factor)


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, time-sorted schedule of :class:`FaultEvent` s."""

    events: Tuple[FaultEvent, ...] = ()

    @classmethod
    def from_events(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        ordered = sorted(
            events, key=lambda e: (e.at, KINDS.index(e.kind), e.target, e.peer or "")
        )
        return cls(events=tuple(ordered))

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a chaos-spec string.

        Grammar: semicolon-separated clauses ``kind:target@time``;
        ``slow`` appends ``xFACTOR`` to the time; ``cut``/``heal``
        target a link as ``a-b``.  Example::

            crash:s1@2.0;recover:s1@4.0;slow:s2@1.0x0.25;cut:c0-s3@1.0
        """
        clauses = [c.strip() for c in spec.split(";") if c.strip()]
        if not clauses:
            raise FaultSpecError(f"chaos spec {spec!r} contains no clauses")
        return cls.from_events(_parse_clause(c) for c in clauses)

    @classmethod
    def single_crash(
        cls, server: str, at: float, recover_at: Optional[float] = None
    ) -> "FaultPlan":
        """Crash one server, optionally recovering it later."""
        events = [FaultEvent(at=at, kind="crash", target=server)]
        if recover_at is not None:
            if recover_at <= at:
                raise FaultSpecError(
                    f"recover_at ({recover_at!r}) must be after at ({at!r})"
                )
            events.append(FaultEvent(at=recover_at, kind="recover", target=server))
        return cls.from_events(events)

    @classmethod
    def random(
        cls,
        rng,
        servers: Sequence[str],
        duration: float,
        crashes: int = 1,
        mean_outage: Optional[float] = None,
    ) -> "FaultPlan":
        """Seeded random crash/recover schedule over ``servers``.

        Crash times fall in the first 60% of ``duration``; outages are
        exponentially distributed around ``mean_outage`` (default a
        quarter of the duration) and always end before ``duration``.
        """
        if not servers:
            raise FaultSpecError("random plan needs at least one server")
        if duration <= 0:
            raise FaultSpecError(f"duration must be > 0, got {duration!r}")
        mean = mean_outage if mean_outage is not None else duration / 4.0
        events: List[FaultEvent] = []
        for _ in range(int(crashes)):
            server = servers[int(rng.integers(len(servers)))]
            at = float(rng.uniform(0.05, 0.6)) * duration
            outage = max(float(rng.exponential(mean)), 1e-3)
            recover_at = min(at + outage, duration * 0.95)
            events.append(FaultEvent(at=at, kind="crash", target=server))
            events.append(FaultEvent(at=recover_at, kind="recover", target=server))
        return cls.from_events(events)

    def spec(self) -> str:
        """The whole plan in chaos-spec syntax."""
        return ";".join(event.spec() for event in self.events)

    def targets(self) -> Tuple[str, ...]:
        """Distinct nodes named anywhere in the plan (sorted)."""
        names = set()
        for event in self.events:
            names.add(event.target)
            if event.peer:
                names.add(event.peer)
        return tuple(sorted(names))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)
