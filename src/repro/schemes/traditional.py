"""Traditional Storage (TS) — paper Section IV-A1.

"The servers are responsible for normal I/O operations.  The analysis
kernels are executed on the clients."  The compute nodes partition the
raster into contiguous element ranges; each node reads its range plus
the dependence halo through the PFS client and runs the kernel locally.
Results stay at the compute nodes, where the analysis application
consumes them (the convention of the client-side processing baseline:
derived data feeds the "further computation" in client memory) — pass
``write_back=True`` to also persist the output through the PFS, which
doubles the client<->storage traffic.

Either way every input byte crosses the compute<->storage links, which
is exactly the movement active storage exists to avoid.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ActiveStorageError
from ..kernels.stencil import Window, window_bounds
from ..obs.span import NULL_SPAN
from ..sim import contain_failures
from .base import Scheme


class TraditionalScheme(Scheme):
    """Ship data to the compute nodes and compute there."""

    name = "TS"

    def __init__(self, pfs, registry=None, write_back: bool = False):
        super().__init__(pfs, registry)
        self.write_back = write_back
        #: node name -> (first element, output array); assembled by
        #: :meth:`client_output` for verification.
        self._client_results: Dict[str, tuple] = {}

    def client_output(self, meta_shape=None) -> np.ndarray:
        """Assemble the in-client-memory results of the last operation
        (verification aid; carries no simulated cost)."""
        if not self._client_results:
            raise ActiveStorageError("no client-side results recorded")
        total = sum(arr.size for _, arr in self._client_results.values())
        out = np.empty(total, dtype=np.float64)
        for first, arr in self._client_results.values():
            out[first : first + arr.size] = arr
        return out.reshape(meta_shape) if meta_shape is not None else out

    def _serve(self, operator: str, input_file: str, output_file: str, options):
        kernel = self.registry.get(operator)
        meta = self.pfs.metadata.lookup(input_file)
        compute_nodes = self.cluster.compute_nodes
        if not compute_nodes:
            raise ActiveStorageError("TS requires at least one compute node")
        # Results go to a per-serve dict so concurrent serves (the
        # serving layer's normal path) don't clobber each other; the
        # caller may supply its own sink to read them back.
        results: Dict[str, tuple] = options.get("results_sink", {})
        results.clear()
        self._client_results = results

        write_back = bool(options.get("write_back", self.write_back))
        if write_back and not self.pfs.metadata.exists(output_file):
            self.pfs.metadata.create(
                output_file,
                meta.size,
                meta.layout,
                dtype=np.float64,
                shape=meta.shape,
            )

        pattern = kernel.pattern()
        width = meta.width if meta.shape is not None else 1
        rb = pattern.reach_before(width)
        ra = pattern.reach_after(width)
        n = meta.n_elements

        # Even contiguous partition over the compute nodes.
        span = options.get("trace_span") or NULL_SPAN
        shares = self._partition(n, len(compute_nodes))
        workers = []
        for node, (first, count) in zip(compute_nodes, shares):
            if count == 0:
                continue
            workers.append(
                self.env.process(
                    self._worker(
                        node,
                        kernel,
                        meta,
                        output_file,
                        first,
                        count,
                        rb,
                        ra,
                        width,
                        write_back,
                        results,
                        span,
                    ),
                    name=f"ts-worker:{node.name}",
                )
            )
        for worker in contain_failures(workers):
            yield worker

        return self._result(
            operator,
            input_file,
            output_file,
            offloaded=False,
            extra={"write_back": write_back},
        )

    @staticmethod
    def _partition(n_elements: int, n_workers: int):
        """Contiguous, balanced element shares (first gets the remainder)."""
        base, extra = divmod(n_elements, n_workers)
        shares = []
        first = 0
        for k in range(n_workers):
            count = base + (1 if k < extra else 0)
            shares.append((first, count))
            first += count
        return shares

    def _worker(
        self,
        node,
        kernel,
        meta,
        output_file,
        first,
        count,
        rb,
        ra,
        width,
        write_back,
        results,
        span=NULL_SPAN,
    ):
        client = self.pfs.client(node.name)
        win_lo, win_hi = window_bounds(first, count, rb, ra, meta.n_elements)
        tracer = self.cluster.monitors.tracer
        rspan = NULL_SPAN
        if span:
            rspan = tracer.begin(
                f"read:{node.name}",
                cat="read",
                parent=span,
                node=node.name,
                bytes=(win_hi - win_lo) * meta.element_size,
            )
        raw = yield client.read(
            meta.name,
            win_lo * meta.element_size,
            (win_hi - win_lo) * meta.element_size,
            span=rspan,
        )
        rspan.finish()
        window = Window(
            data=raw.view(meta.dtype).astype(np.float64, copy=False),
            lo=win_lo,
            first=first,
            end=first + count,
            width=width,
            n_elements=meta.n_elements,
        )
        cspan = NULL_SPAN
        if span:
            cspan = tracer.begin(
                f"compute:{node.name}",
                cat="compute",
                parent=span,
                node=node.name,
                kernel=kernel.name,
                elements=count,
            )
        yield node.cpu.run_kernel(kernel.name, count)
        cspan.finish()
        out = kernel.apply_window(window)
        results[node.name] = (first, out)
        if write_back:
            yield client.write_elems(output_file, first, out)
        return None
