"""Normal Active Storage (NAS) — paper Section IV-A1.

"The data is distributed with normal round-robin pattern.  The kernels
are employed and executed at the server side, with each node processing
its local data.  When dependent data [is] needed, it has to acquire
them from neighbor server nodes, which is required by current active
storage systems."

No bandwidth analysis, no layout change: the request is offloaded
unconditionally and the servers pull whatever halo strips they are
missing from their peers — incurring both the inter-server traffic and
the request-serving load the paper measures.
"""

from __future__ import annotations

from typing import Optional

from ..core.das_client import ActiveStorageClient
from ..core.decision import OFFLOAD_IN_PLACE, DecisionEngine, OffloadDecision
from ..core.request import ActiveRequest
from ..errors import ActiveStorageError
from .base import Scheme


class NormalActiveStorageScheme(Scheme):
    """Unconditional offload on the file's current (round-robin) layout."""

    name = "NAS"

    def __init__(self, pfs, registry=None, halo_granularity: str = "strip"):
        super().__init__(pfs, registry)
        self.client = ActiveStorageClient(
            pfs,
            home=self._home(),
            registry=self.registry,
            halo_granularity=halo_granularity,
        )

    def _home(self) -> str:
        names = self.cluster.compute_names
        if names:
            return names[0]
        return self.cluster.storage_names[0]

    def _serve(self, operator: str, input_file: str, output_file: str, options):
        meta = self.pfs.metadata.lookup(input_file)
        request = ActiveRequest(
            operator=operator,
            file=input_file,
            output=output_file,
            replicate_output=False,  # round-robin output has no replicas
        )
        # NAS has no decision engine; record what the predictor *would*
        # have said under the current layout, for reporting only.
        engine: DecisionEngine = self.client.engine
        prediction = engine.predictor.predict(
            meta, engine.features.get(operator), output_replicated=False
        )
        decision = OffloadDecision(
            outcome=OFFLOAD_IN_PLACE,
            redistribute_to=None,
            prediction_current=prediction,
            prediction_planned=None,
            redistribution_bytes=0,
            pipeline_length=1,
            reason="NAS offloads unconditionally on the current layout",
        )
        result = yield self.client.execute_offload(
            request, decision, span=options.get("trace_span")
        )
        return self._result(
            operator,
            input_file,
            output_file,
            offloaded=True,
            decision=decision,
            extra={
                "remote_halo_bytes": result.total_remote_halo_bytes,
                "per_server": result.per_server,
            },
        )
