"""Dynamic Active Storage (DAS) — the paper's proposal.

The full Fig. 3 workflow: consult the decision engine; on acceptance,
optionally reconfigure the file distribution (improved layout with
boundary replication) and offload; on rejection, fall back to serving
the operation as normal I/O on the compute nodes (the TS path) — "the
request will be served as in normal instead of as an active storage
request".
"""

from __future__ import annotations

from typing import Optional

from ..core.das_client import ActiveStorageClient
from ..core.decision import DecisionEngine
from ..core.request import ActiveRequest
from ..errors import OffloadRejectedError
from .base import Scheme
from .traditional import TraditionalScheme


class DynamicActiveStorageScheme(Scheme):
    """Predict, decide, (re)distribute, offload — or fall back."""

    name = "DAS"

    def __init__(
        self,
        pfs,
        registry=None,
        engine: Optional[DecisionEngine] = None,
        halo_granularity: str = "strip",
    ):
        super().__init__(pfs, registry)
        self.client = ActiveStorageClient(
            pfs,
            home=self._home(),
            engine=engine,
            registry=self.registry,
            halo_granularity=halo_granularity,
        )
        self._fallback = TraditionalScheme(pfs, registry=self.registry)

    def _home(self) -> str:
        names = self.cluster.compute_names
        if names:
            return names[0]
        return self.cluster.storage_names[0]

    def _serve(self, operator: str, input_file: str, output_file: str, options):
        request = ActiveRequest(
            operator=operator,
            file=input_file,
            output=output_file,
            pipeline_length=int(options.get("pipeline_length", 1)),
            replicate_output=bool(options.get("replicate_output", True)),
        )
        try:
            result = yield self.client.submit(request)
        except OffloadRejectedError as rejected:
            # Dynamic fallback: serve as normal I/O on the compute nodes.
            ts = yield from self._fallback._serve(operator, input_file, output_file, {})
            ts.scheme = self.name
            ts.decision = rejected.decision
            ts.extra["fallback"] = "normal-io"
            return ts

        return self._result(
            operator,
            input_file,
            output_file,
            offloaded=True,
            decision=result.decision,
            extra={
                "remote_halo_bytes": result.total_remote_halo_bytes,
                "redistribution_bytes": result.redistribution_bytes,
                "per_server": result.per_server,
            },
        )
