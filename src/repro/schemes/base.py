"""Scheme abstraction: one way of serving a data-analysis operation.

The paper evaluates three (Section IV-A1): Traditional Storage (TS),
Normal Active Storage (NAS), and Dynamic Active Storage (DAS).  Every
scheme exposes the same contract — run one operator over one PFS file,
producing a same-size output file — and returns a
:class:`SchemeResult` with the simulated makespan and classified
traffic, so the harness can tabulate them side by side.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.decision import OffloadDecision
from ..errors import ActiveStorageError
from ..kernels.base import KernelRegistry, default_registry
from ..metrics.accounting import TrafficDelta, TrafficMeter, sustained_bandwidth
from ..pfs.filesystem import ParallelFileSystem


@dataclass
class SchemeResult:
    """Outcome of serving one operation under one scheme."""

    scheme: str
    operator: str
    input_file: str
    output_file: str
    #: Simulated seconds from submission to completion (makespan).
    elapsed: float
    #: Input dataset size in bytes (for bandwidth normalisation).
    data_bytes: int
    traffic: TrafficDelta = field(default_factory=TrafficDelta)
    #: True when the operation ran on the storage nodes.
    offloaded: bool = False
    #: The DAS engine's verdict, when one was consulted.
    decision: Optional[OffloadDecision] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def bandwidth(self) -> float:
        """Sustained bandwidth (paper Fig. 14): dataset bytes / makespan."""
        return sustained_bandwidth(self.data_bytes, self.elapsed)


class Scheme(ABC):
    """One evaluation scheme bound to a PFS instance."""

    #: Scheme label as used in the paper's figures.
    name: str = ""

    def __init__(
        self,
        pfs: ParallelFileSystem,
        registry: Optional[KernelRegistry] = None,
    ):
        self.pfs = pfs
        self.cluster = pfs.cluster
        self.env = pfs.cluster.env
        self.registry = registry or default_registry

    def run_operation(self, operator: str, input_file: str, output_file: str, **options):
        """Process: serve one operation; value is a :class:`SchemeResult`."""
        return self.env.process(
            self._measured(operator, input_file, output_file, options),
            name=f"scheme:{self.name}:{operator}",
        )

    def _measured(self, operator: str, input_file: str, output_file: str, options):
        meta = self.pfs.metadata.lookup(input_file)
        meter = TrafficMeter(self.cluster)
        started = self.env.now
        result = yield from self._serve(operator, input_file, output_file, options)
        if not isinstance(result, SchemeResult):
            raise ActiveStorageError(
                f"{type(self).__name__}._serve must return a SchemeResult"
            )
        result.elapsed = self.env.now - started
        result.data_bytes = meta.size
        result.traffic = meter.delta()
        return result

    @abstractmethod
    def _serve(self, operator: str, input_file: str, output_file: str, options):
        """Generator implementing the scheme; must return a
        :class:`SchemeResult` shell (elapsed/traffic are filled in by
        :meth:`_measured`)."""

    def _result(self, operator: str, input_file: str, output_file: str, **kw) -> SchemeResult:
        return SchemeResult(
            scheme=self.name,
            operator=operator,
            input_file=input_file,
            output_file=output_file,
            elapsed=0.0,
            data_bytes=0,
            **kw,
        )
