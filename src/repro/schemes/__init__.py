"""The paper's three evaluation schemes: TS, NAS and DAS."""

from .base import Scheme, SchemeResult
from .das import DynamicActiveStorageScheme
from .nas import NormalActiveStorageScheme
from .traditional import TraditionalScheme

#: Scheme label -> class, as used by the experiment harness.
SCHEMES = {
    "TS": TraditionalScheme,
    "NAS": NormalActiveStorageScheme,
    "DAS": DynamicActiveStorageScheme,
}

__all__ = [
    "DynamicActiveStorageScheme",
    "NormalActiveStorageScheme",
    "SCHEMES",
    "Scheme",
    "SchemeResult",
    "TraditionalScheme",
]
