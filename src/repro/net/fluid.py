"""Max-min fair-share fluid network model.

Every transfer is a *flow* traversing two directed link resources: the
sender NIC's transmit side and the receiver NIC's receive side.  At any
instant each flow progresses at the max-min fair rate determined by
progressive filling over the links it crosses — the standard fluid
approximation used by network simulators (SimGrid et al.).  This avoids
the head-of-line blocking artefacts of hold-the-pipe models: twelve
clients each reading from twelve servers saturate all twenty-four NICs
concurrently, exactly like the real bipartite traffic pattern.

Rates are recomputed whenever a flow starts or finishes; between
recomputations every flow drains linearly, so the scheduler only needs
one timer for the earliest completion.  Settling is deferred to the
engine's clock-advance hook: rates are only consumed once simulated
time moves, so a same-instant burst of starts and finishes pays for a
single progressive-filling pass.

Flow and link collections are insertion-ordered dicts, never sets:
progressive filling breaks bottleneck ties by iteration order and
accumulates float rates in it, and same-instant completions fire their
events in it.  Identity-hashed sets would make all three follow object
memory addresses — two same-seed runs would drift apart in the last
ulps and in event order, which the serving benches (bit-identical
replay) would catch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import NetworkError, SimulationError
from ..sim import Environment, Event

_EPS = 1e-6  # byte tolerance when declaring a flow drained


class FluidLink:
    """One direction of one NIC (or any capacity-bound pipe).

    ``residual``/``ncount``/``in_order`` are progressive-filling scratch
    owned by :meth:`FluidScheduler._recompute`; ``in_order`` marks
    membership in the scheduler's cached fill-order list.
    """

    __slots__ = ("name", "capacity", "flows", "residual", "ncount", "in_order")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise NetworkError(f"link {name!r} capacity must be positive")
        self.name = name
        self.capacity = float(capacity)
        self.flows: Dict["FluidFlow", None] = {}
        self.residual = 0.0
        self.ncount = 0
        self.in_order = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FluidLink {self.name} cap={self.capacity:.3g} flows={len(self.flows)}>"


class FluidFlow:
    """A transfer in progress."""

    __slots__ = (
        "size",
        "remaining",
        "rate",
        "links",
        "event",
        "started_at",
        "done_below",
        "epoch",
    )

    def __init__(self, size: float, links: Tuple[FluidLink, ...], event: Event, now: float):
        size = float(size)
        self.size = size
        self.remaining = size
        self.rate = 0.0
        self.links = links
        self.event = event
        self.started_at = now
        # Drained threshold, hoisted out of the controller's per-wake
        # scan; same float product as `_EPS * max(1.0, size)`.
        self.done_below = _EPS * (size if size > 1.0 else 1.0)
        # Assigned-this-round stamp for _recompute (scratch).
        self.epoch = 0


class FluidScheduler:
    """Shares link capacity among concurrent flows, max-min fairly."""

    def __init__(self, env: Environment):
        self.env = env
        self._links: Dict[str, FluidLink] = {}
        self._flows: Dict[FluidFlow, None] = {}
        self._last_advance = env.now
        #: Live completion timer (a Timeout whose callback is
        #: :meth:`_on_timer`); replanted by every settle.
        self._timer: Optional[Event] = None
        self._epoch = 0
        self._dirty = False
        # Settle lazily, once per distinct timestamp: the engine calls
        # _on_advance just before the clock moves (or idles out)
        # whenever the armed flag is up, so a burst of same-instant
        # starts/finishes pays for one progressive-filling pass.
        env.add_advance_hook(self._on_advance)
        # Cached fill order: links in first-seen order over the live
        # flows.  Flow *starts* append any new links at the end (the
        # order a rebuild would produce, since new flows sit at the end
        # of the flow dict); any flow *removal* marks it stale and the
        # next recompute rebuilds it from scratch.
        self._order: List[FluidLink] = []
        self._order_stale = False
        # Earliest time-to-completion at current rates, maintained by
        # _recompute as rates are assigned (consumed by the controller).
        self._next_delay = float("inf")

    # -- link registry ------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> FluidLink:
        if name in self._links:
            raise NetworkError(f"fluid link {name!r} already exists")
        link = FluidLink(name, capacity)
        self._links[name] = link
        return link

    def link(self, name: str) -> FluidLink:
        try:
            return self._links[name]
        except KeyError:
            raise NetworkError(f"no fluid link named {name!r}") from None

    # -- flow lifecycle --------------------------------------------------------
    def start(self, link_names: Tuple[str, ...], size: float) -> Event:
        """Begin a flow across the named links; the returned event
        succeeds when the last byte has drained."""
        done = self.env.event()
        if size <= 0:
            done.succeed()
            return done
        links = tuple(self._links[n] for n in link_names)
        flow = FluidFlow(size, links, done, self.env.now)
        self._flows[flow] = None
        for link in links:
            link.flows[flow] = None
        if not self._order_stale:
            order = self._order
            for link in links:
                if not link.in_order:
                    link.in_order = True
                    order.append(link)
        # Rates are only consumed once simulated time moves again, so
        # recomputation is deferred to the engine's clock-advance hook.
        self._dirty = True
        self.env._hooks_armed = True
        return done

    # -- fluid mechanics ------------------------------------------------------------
    def _advance(self) -> None:
        """Drain every flow at its current rate up to `now`."""
        now = self.env.now
        dt = now - self._last_advance
        if dt > 0:
            for flow in self._flows:
                flow.remaining -= flow.rate * dt
        self._last_advance = now

    def _recompute(self) -> None:
        """Progressive filling: repeatedly saturate the tightest link.

        Hot: runs on every flow start/finish with hundreds of live
        flows under load.  Instead of copying every link's flow dict
        per call, it keeps one residual-capacity and one
        unassigned-count per link and skips already-assigned flows via
        an identity set (membership only — hash order never drives
        iteration).  Iteration orders — links in first-flow-touch
        order, flows in `link.flows` insertion order — and the
        per-link subtraction sequence are exactly those of the
        dict-copy formulation, so rates match it bit for bit.

        The pre-recompute drain (:meth:`_advance`) is fused into the
        assignment loop: every live flow is assigned exactly once per
        fill, so subtracting ``old_rate * dt`` right before the new
        rate lands performs the same independent per-flow update the
        separate drain pass did — callers need not `_advance` first.
        """
        flows_dict = self._flows
        now = self.env.now
        dt = now - self._last_advance
        self._last_advance = now
        epoch = self._epoch = self._epoch + 1
        # Links in first-seen order over flows (same order _active_links
        # produced).  The order is cached across recomputes: starts kept
        # it current by appending; only removals force this rebuild.
        order = self._order
        if self._order_stale:
            for link in order:
                link.in_order = False
            order = self._order = []
            append = order.append
            for flow in flows_dict:
                for link in flow.links:
                    if not link.in_order:
                        link.in_order = True
                        append(link)
            self._order_stale = False
        for link in order:
            link.residual = link.capacity
            link.ncount = len(link.flows)
        total = unassigned = len(flows_dict)
        inf = float("inf")
        best = inf  # earliest completion across assigned rates
        drain = dt > 0.0
        while unassigned:
            bottleneck = None
            share = inf
            for link in order:
                n = link.ncount
                if not n:
                    continue
                s = link.residual / n
                if s < share:
                    share, bottleneck = s, link
            if bottleneck is None:
                raise SimulationError("flows exist but no link carries them")
            positive = share > 0.0
            if bottleneck.ncount == total:
                # One link carries *every* flow (the dominant case when
                # e.g. the NAS server's NIC is the system bottleneck):
                # the whole fill is this single round, nothing was
                # assigned before it, and the epoch stamps are never
                # read again — skip them and the scratch upkeep.
                if drain:
                    for flow in bottleneck.flows:
                        rem = flow.remaining = flow.remaining - flow.rate * dt
                        flow.rate = share
                        if positive:
                            if rem > 0.0:
                                t = rem / share
                                if t < best:
                                    best = t
                            else:
                                best = 0.0
                else:
                    for flow in bottleneck.flows:
                        rem = flow.remaining
                        flow.rate = share
                        if positive:
                            if rem > 0.0:
                                t = rem / share
                                if t < best:
                                    best = t
                            else:
                                best = 0.0
                break
            if bottleneck.ncount == unassigned:
                # Final round: every remaining flow crosses the
                # bottleneck, and the residual/count scratch is never
                # read again, so skip its upkeep.  This is the common
                # case when one link (e.g. the NAS server's NIC) carries
                # the whole load — the fill completes in one round.
                for flow in bottleneck.flows:
                    if flow.epoch != epoch:
                        flow.epoch = epoch
                        rem = flow.remaining
                        if drain:
                            rem = flow.remaining = rem - flow.rate * dt
                        flow.rate = share
                        if positive:
                            t = rem / share if rem > 0.0 else 0.0
                            if t < best:
                                best = t
                break
            for flow in bottleneck.flows:
                if flow.epoch == epoch:
                    continue
                flow.epoch = epoch
                rem = flow.remaining
                if drain:
                    rem = flow.remaining = rem - flow.rate * dt
                flow.rate = share
                if positive:
                    t = rem / share if rem > 0.0 else 0.0
                    if t < best:
                        best = t
                unassigned -= 1
                for link in flow.links:
                    link.residual -= share
                    link.ncount -= 1
        self._next_delay = best

    def _active_links(self) -> List[FluidLink]:
        """Links currently carrying at least one flow (debug/tests)."""
        seen: Dict[FluidLink, None] = {}
        for flow in self._flows:
            for link in flow.links:
                seen[link] = None
        return list(seen)

    def _next_completion(self) -> float:
        """Seconds until the earliest flow drains at current rates."""
        best = float("inf")
        for flow in self._flows:
            rate = flow.rate
            if rate > 0:
                rem = flow.remaining
                t = rem / rate if rem > 0.0 else 0.0
                if t < best:
                    best = t
        return best

    # -- controller ---------------------------------------------------------------------
    def _on_advance(self) -> None:
        """Engine clock-advance hook: settle rates if the flow set changed."""
        if not self._dirty:
            return
        self._dirty = False
        if not self._flows:
            timer = self._timer
            if timer is not None:
                timer.cancel()
                self._timer = None
            return
        self._settle()

    def _settle(self) -> None:
        """Recompute rates and replant the earliest-completion timer."""
        self._recompute()
        delay = self._next_delay  # maintained by _recompute
        if delay == float("inf"):
            raise SimulationError("active flows with zero aggregate rate")
        timer = self._timer
        if timer is not None:
            timer.cancel()  # lazy: heap entry stays, dispatch is a no-op
        timer = self.env.timeout(delay)
        timer.callbacks.append(self._on_timer)
        self._timer = timer

    def _on_timer(self, _event: Event) -> None:
        """Completion timer fired: drain, complete finished flows.

        The drain and the finished scan are one fused pass (same
        per-flow subtraction :meth:`_advance` performs).
        """
        self._timer = None
        now = self.env.now
        dt = now - self._last_advance
        self._last_advance = now
        finished = []
        if dt > 0.0:
            add = finished.append
            for flow in self._flows:
                rem = flow.remaining = flow.remaining - flow.rate * dt
                if rem <= flow.done_below:
                    add(flow)
        else:
            finished = [f for f in self._flows if f.remaining <= f.done_below]
        if finished:
            flows = self._flows
            for flow in finished:
                flows.pop(flow, None)
                for link in flow.links:
                    link.flows.pop(flow, None)
                flow.event.succeed()
            self._dirty = True
            self._order_stale = True
            self.env._hooks_armed = True
        elif self._flows:
            # Epsilon shortfall (or a timer that outlived a same-instant
            # settle): replant at the true earliest completion.
            delay = self._next_completion()
            if delay == float("inf"):
                raise SimulationError("active flows with zero aggregate rate")
            timer = self.env.timeout(delay)
            timer.callbacks.append(self._on_timer)
            self._timer = timer

    # -- introspection (tests, monitors) ---------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def link_utilization(self, name: str) -> float:
        """Fraction of a link's capacity currently allocated."""
        link = self.link(name)
        if self._dirty and self._flows:
            # Settle deferred rates before reading them (_recompute
            # drains up to now itself; the timer is replanted too, so
            # the clock-advance hook's later no-op is harmless).
            self._dirty = False
            self._settle()
        used = sum(f.rate for f in link.flows)
        return used / link.capacity if link.capacity else 0.0
