"""Max-min fair-share fluid network model.

Every transfer is a *flow* traversing two directed link resources: the
sender NIC's transmit side and the receiver NIC's receive side.  At any
instant each flow progresses at the max-min fair rate determined by
progressive filling over the links it crosses — the standard fluid
approximation used by network simulators (SimGrid et al.).  This avoids
the head-of-line blocking artefacts of hold-the-pipe models: twelve
clients each reading from twelve servers saturate all twenty-four NICs
concurrently, exactly like the real bipartite traffic pattern.

Rates are recomputed whenever a flow starts or finishes; between
recomputations every flow drains linearly, so the controller only needs
one timer for the earliest completion.

Flow and link collections are insertion-ordered dicts, never sets:
progressive filling breaks bottleneck ties by iteration order and
accumulates float rates in it, and same-instant completions fire their
events in it.  Identity-hashed sets would make all three follow object
memory addresses — two same-seed runs would drift apart in the last
ulps and in event order, which the serving benches (bit-identical
replay) would catch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import NetworkError, SimulationError
from ..sim import Environment, Event
from ..sim.core import Process

_EPS = 1e-6  # byte tolerance when declaring a flow drained


class FluidLink:
    """One direction of one NIC (or any capacity-bound pipe)."""

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise NetworkError(f"link {name!r} capacity must be positive")
        self.name = name
        self.capacity = float(capacity)
        self.flows: Dict["FluidFlow", None] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FluidLink {self.name} cap={self.capacity:.3g} flows={len(self.flows)}>"


class FluidFlow:
    """A transfer in progress."""

    __slots__ = ("size", "remaining", "rate", "links", "event", "started_at")

    def __init__(self, size: float, links: Tuple[FluidLink, ...], event: Event, now: float):
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.links = links
        self.event = event
        self.started_at = now


class FluidScheduler:
    """Shares link capacity among concurrent flows, max-min fairly."""

    def __init__(self, env: Environment):
        self.env = env
        self._links: Dict[str, FluidLink] = {}
        self._flows: Dict[FluidFlow, None] = {}
        self._last_advance = env.now
        self._controller: Optional[Process] = None

    # -- link registry ------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> FluidLink:
        if name in self._links:
            raise NetworkError(f"fluid link {name!r} already exists")
        link = FluidLink(name, capacity)
        self._links[name] = link
        return link

    def link(self, name: str) -> FluidLink:
        try:
            return self._links[name]
        except KeyError:
            raise NetworkError(f"no fluid link named {name!r}") from None

    # -- flow lifecycle --------------------------------------------------------
    def start(self, link_names: Tuple[str, ...], size: float) -> Event:
        """Begin a flow across the named links; the returned event
        succeeds when the last byte has drained."""
        done = self.env.event()
        if size <= 0:
            done.succeed()
            return done
        links = tuple(self._links[n] for n in link_names)
        self._advance()
        flow = FluidFlow(size, links, done, self.env.now)
        self._flows[flow] = None
        for link in links:
            link.flows[flow] = None
        self._recompute()
        self._kick_controller()
        return done

    # -- fluid mechanics ------------------------------------------------------------
    def _advance(self) -> None:
        """Drain every flow at its current rate up to `now`."""
        now = self.env.now
        dt = now - self._last_advance
        if dt > 0:
            for flow in self._flows:
                flow.remaining -= flow.rate * dt
        self._last_advance = now

    def _recompute(self) -> None:
        """Progressive filling: repeatedly saturate the tightest link."""
        for flow in self._flows:
            flow.rate = 0.0
        residual = {link: link.capacity for link in self._active_links()}
        pending: Dict[FluidLink, Dict[FluidFlow, None]] = {
            link: dict(link.flows) for link in residual
        }
        unassigned = dict.fromkeys(self._flows)
        while unassigned:
            bottleneck = None
            share = float("inf")
            for link, flows in pending.items():
                if not flows:
                    continue
                s = residual[link] / len(flows)
                if s < share:
                    share, bottleneck = s, link
            if bottleneck is None:
                raise SimulationError("flows exist but no link carries them")
            for flow in list(pending[bottleneck]):
                flow.rate = share
                unassigned.pop(flow, None)
                for link in flow.links:
                    residual[link] -= share
                    pending[link].pop(flow, None)

    def _active_links(self) -> List[FluidLink]:
        seen: Dict[FluidLink, None] = {}
        for flow in self._flows:
            seen.update(dict.fromkeys(flow.links))
        return list(seen)

    def _next_completion(self) -> float:
        """Seconds until the earliest flow drains at current rates."""
        best = float("inf")
        for flow in self._flows:
            if flow.rate > 0:
                best = min(best, max(0.0, flow.remaining) / flow.rate)
        return best

    # -- controller ---------------------------------------------------------------------
    def _kick_controller(self) -> None:
        if self._controller is None or not self._controller.is_alive:
            self._controller = self.env.process(
                self._run_controller(), name="fluid-controller"
            )
        else:
            self._controller.interrupt("flows-changed")

    def _run_controller(self):
        while True:
            if not self._flows:
                return  # a fresh controller is spawned on the next start()
            delay = self._next_completion()
            if delay == float("inf"):
                raise SimulationError("active flows with zero aggregate rate")
            try:
                yield self.env.timeout(delay)
            except Exception:
                # Interrupted: flow set changed; rates already recomputed.
                self._advance()
                continue
            self._advance()
            finished = [f for f in self._flows if f.remaining <= _EPS * max(1.0, f.size)]
            for flow in finished:
                self._flows.pop(flow, None)
                for link in flow.links:
                    link.flows.pop(flow, None)
                flow.event.succeed()
            if finished:
                self._recompute()

    # -- introspection (tests, monitors) ---------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def link_utilization(self, name: str) -> float:
        """Fraction of a link's capacity currently allocated."""
        link = self.link(name)
        used = sum(f.rate for f in link.flows)
        return used / link.capacity if link.capacity else 0.0
