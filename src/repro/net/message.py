"""Message envelope used by the simulated transport layer."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

#: Well-known message tags (mirroring the MPI habit of tagging traffic
#: classes so receivers can select what they wait for).
TAG_DATA = "data"
TAG_RPC = "rpc"
TAG_RPC_REPLY = "rpc-reply"
TAG_HALO = "halo"
TAG_RESULT = "result"
TAG_CONTROL = "control"

_msg_ids = itertools.count(1)


@dataclass(frozen=True)
class FaultNotice:
    """Error payload a server returns when it cannot serve a request.

    A *live* server whose downstream dependency failed (a replica
    holder crashed, a link was cut) must still answer — silently
    dropping the request would leave a non-fault-tolerant caller
    blocked forever.  Clients translate a :class:`FaultNotice` reply
    back into the named exception.
    """

    kind: str  #: "node-down" | "link-down"
    error: str  #: human-readable description


class Message:
    """One simulated network message.

    ``size`` is the on-wire byte count used for transfer timing and
    bandwidth accounting; ``payload`` is the real Python object carried
    for functional correctness (e.g. a NumPy halo block).  The two are
    deliberately decoupled: the simulation charges the bytes the real
    system would have moved, not ``sys.getsizeof`` of the payload.

    Plain ``__slots__`` class (one is built per send on the hot path);
    ``msg_id`` is drawn from a process-wide counter and ``reply_to``
    correlates an RPC reply with its request.
    """

    __slots__ = ("src", "dst", "size", "tag", "payload", "reply_to", "msg_id", "sent_at")

    def __init__(
        self,
        src: str,
        dst: str,
        size: float,
        tag: str = TAG_DATA,
        payload: Any = None,
        reply_to: Optional[int] = None,
        msg_id: Optional[int] = None,
        sent_at: float = 0.0,
    ):
        self.src = src
        self.dst = dst
        self.size = size
        self.tag = tag
        self.payload = payload
        self.reply_to = reply_to
        self.msg_id = next(_msg_ids) if msg_id is None else msg_id
        #: Simulated send timestamp, stamped by the transport.
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Message #{self.msg_id} {self.src}->{self.dst} tag={self.tag}"
            f" size={self.size:.0f}B>"
        )
