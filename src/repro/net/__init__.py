"""Simulated network fabric: NICs, switch, transport and collectives."""

from .collective import Collectives
from .fabric import Fabric
from .message import (
    TAG_CONTROL,
    TAG_DATA,
    TAG_HALO,
    TAG_RESULT,
    TAG_RPC,
    TAG_RPC_REPLY,
    Message,
)
from .nic import NIC
from .transport import Transport

__all__ = [
    "Collectives",
    "Fabric",
    "Message",
    "NIC",
    "TAG_CONTROL",
    "TAG_DATA",
    "TAG_HALO",
    "TAG_RESULT",
    "TAG_RPC",
    "TAG_RPC_REPLY",
    "Transport",
]
