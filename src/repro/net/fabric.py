"""Switch fabric connecting the cluster's NICs (star topology).

High-end clusters interconnect compute and storage partitions through a
switched fabric whose bisection bandwidth normally exceeds any single
NIC, so the default fabric is non-blocking (it only adds the port
latency).  A ``flow_limit`` can be set to model an oversubscribed
switch for ablation experiments.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from ..errors import LinkDownError, NetworkError, RoutingError
from ..sim import Environment, Resource
from .fluid import FluidScheduler
from .nic import NIC


#: Name of the shared cross-partition link (when oversubscribed).
BISECTION_LINK = "fabric.bisection"


class Fabric:
    """Registry of NICs + the fluid bandwidth scheduler they share.

    Optionally models an oversubscribed switch: when a bisection
    bandwidth is set, every flow between nodes of *different partitions*
    (compute vs storage) additionally traverses one shared
    :data:`BISECTION_LINK`, so cross-partition traffic contends for the
    switch uplinks the way it does on real oversubscribed fabrics.
    Intra-partition traffic (e.g. server-to-server halo exchange through
    leaf switches) is unaffected.
    """

    def __init__(self, env: Environment, flow_limit: int = 0):
        self.env = env
        self._nics: Dict[str, NIC] = {}
        self._partitions: Dict[str, str] = {}
        self.fluid = FluidScheduler(env)
        self._bisection = False
        self._flow_limit = int(flow_limit)
        self._flow_tokens: Optional[Resource] = (
            Resource(env, capacity=flow_limit) if flow_limit > 0 else None
        )
        #: Cut node pairs (unordered): traffic between them fails until
        #: healed.  Fault injection for partitions and flapping links.
        self._cuts: Set[FrozenSet[str]] = set()

    @property
    def flow_limit(self) -> int:
        return self._flow_limit

    def attach(self, nic: NIC, partition: str = "") -> None:
        if nic.owner in self._nics:
            raise NetworkError(f"a NIC named {nic.owner!r} is already attached")
        self._nics[nic.owner] = nic
        self._partitions[nic.owner] = partition
        self.fluid.add_link(nic.tx_link, nic.bandwidth)
        self.fluid.add_link(nic.rx_link, nic.bandwidth)

    def set_bisection_bandwidth(self, bandwidth: float) -> None:
        """Enable the oversubscribed-switch model (0 disables it)."""
        if self._bisection:
            raise NetworkError("bisection bandwidth already configured")
        if bandwidth > 0:
            self.fluid.add_link(BISECTION_LINK, bandwidth)
            self._bisection = True

    def crosses_partitions(self, src: str, dst: str) -> bool:
        return (
            self._partitions.get(src, "") != self._partitions.get(dst, "")
        )

    # -- fault injection: pairwise partitions --------------------------------
    def cut(self, a: str, b: str) -> None:
        """Partition the path between ``a`` and ``b`` (both directions)."""
        self.nic_of(a), self.nic_of(b)  # validate endpoints
        self._cuts.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore a previously cut path (no-op when not cut)."""
        self._cuts.discard(frozenset((a, b)))

    def link_up(self, a: str, b: str) -> bool:
        """True iff the path between ``a`` and ``b`` is not cut."""
        return not self._cuts or frozenset((a, b)) not in self._cuts

    def transfer(self, src: str, dst: str, size: float):
        """Start a fluid flow src->dst; the returned event succeeds when
        the bytes have drained through every link on the path."""
        if not self.link_up(src, dst):
            raise LinkDownError(f"link {src!r}<->{dst!r} is cut")
        src_nic = self.nic_of(src)
        dst_nic = self.nic_of(dst)
        links = [src_nic.tx_link, dst_nic.rx_link]
        if self._bisection and self.crosses_partitions(src, dst):
            links.append(BISECTION_LINK)
        return self.fluid.start(tuple(links), size)

    def nic_of(self, node: str) -> NIC:
        try:
            return self._nics[node]
        except KeyError:
            raise RoutingError(f"no NIC attached for node {node!r}") from None

    def nodes(self):
        return list(self._nics)

    def admit(self):
        """Request a fabric flow token (or None when non-blocking)."""
        if self._flow_tokens is None:
            return None
        return self._flow_tokens.request()

    def release(self, token) -> None:
        if token is not None and self._flow_tokens is not None:
            self._flow_tokens.release(token)

    def __contains__(self, node: str) -> bool:
        return node in self._nics

    def __len__(self) -> int:
        return len(self._nics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Fabric nodes={len(self._nics)} flow_limit={self._flow_limit}>"
