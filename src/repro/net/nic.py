"""Network interface model.

Each node owns one :class:`NIC` with independent transmit and receive
sides (full duplex).  Both sides are registered as links in the
fabric's max-min fluid scheduler (:mod:`repro.net.fluid`): concurrent
flows through a side share its bandwidth fairly, so a storage server
that must simultaneously stream results to clients and serve peers'
dependent-data requests sees exactly the contention the paper's NAS
analysis describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Environment
    from ..sim.monitor import MonitorHub
    from .fluid import FluidLink, FluidScheduler


class NIC:
    """Full-duplex network interface with per-direction bandwidth."""

    def __init__(
        self,
        env: "Environment",
        owner: str,
        bandwidth: float,
        latency: float,
        monitors: "MonitorHub",
    ):
        if bandwidth <= 0:
            raise NetworkError(f"NIC bandwidth must be positive, got {bandwidth!r}")
        if latency < 0:
            raise NetworkError(f"NIC latency must be >= 0, got {latency!r}")
        self.env = env
        self.owner = owner
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.monitors = monitors
        self._up = True
        # Link names in the fabric's fluid scheduler; registered by the
        # fabric when the NIC is attached.
        self.tx_link = f"{owner}.tx"
        self.rx_link = f"{owner}.rx"
        # Lazily-bound counters; created at first account so the hub's
        # counter-creation (and float-summation) order is exactly the
        # first-touch order an uncached lookup would produce.
        self._tx_counter = None
        self._rx_counter = None
        self._total_counter = None

    # -- failure injection ---------------------------------------------------
    @property
    def is_up(self) -> bool:
        return self._up

    def bring_down(self) -> None:
        self._up = False

    def bring_up(self) -> None:
        self._up = True

    # -- accounting ------------------------------------------------------------
    def account_tx(self, size: float) -> None:
        c = self._tx_counter
        if c is None:
            c = self._tx_counter = self.monitors.counter(f"net.tx.{self.owner}")
            self._total_counter = self.monitors.counter("net.bytes_total")
        c.add(size)
        self._total_counter.add(size)

    def account_rx(self, size: float) -> None:
        c = self._rx_counter
        if c is None:
            c = self._rx_counter = self.monitors.counter(f"net.rx.{self.owner}")
        c.add(size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NIC {self.owner} bw={self.bandwidth:.3g}B/s>"
