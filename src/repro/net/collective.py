"""Collective operations over the simulated transport.

These mirror the mpi4py surface (bcast/scatter/gather/allgather/
reduce) but are implemented as explicit point-to-point message sets so
every byte is accounted on the links it actually crosses.  Linear
algorithms are used: with a star fabric the root's NIC is the
bottleneck either way, so trees would not change the simulated time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..sim import Environment
from .message import TAG_DATA
from .transport import Transport


class Collectives:
    """Collective messaging helpers bound to one transport."""

    def __init__(self, transport: Transport):
        self.transport = transport
        self.env: Environment = transport.env

    def broadcast(
        self,
        root: str,
        nodes: Sequence[str],
        size: float,
        payload: Any = None,
        tag: str = TAG_DATA,
    ):
        """Root sends ``size`` bytes to every other node; completes when
        the last delivery lands.  Returns a Process event."""

        def proc():
            sends = [
                self.transport.send(root, node, size, payload, tag=tag)
                for node in nodes
                if node != root
            ]
            if sends:
                yield self.env.all_of(sends)
            return None

        return self.env.process(proc(), name=f"bcast:{root}")

    def scatter(
        self,
        root: str,
        parts: Dict[str, tuple],
        tag: str = TAG_DATA,
    ):
        """Send a distinct (payload, size) to each destination node.

        ``parts`` maps node name -> (payload, size_bytes).
        """

        def proc():
            sends = []
            for node, (payload, size) in parts.items():
                if node == root:
                    continue
                sends.append(self.transport.send(root, node, size, payload, tag=tag))
            if sends:
                yield self.env.all_of(sends)
            return None

        return self.env.process(proc(), name=f"scatter:{root}")

    def gather(
        self,
        root: str,
        senders: Sequence[str],
        size_of: Callable[[str], float],
        payload_of: Optional[Callable[[str], Any]] = None,
        tag: str = TAG_DATA,
    ):
        """Every sender ships its part to root; the returned Process
        event's value is ``{sender: payload}`` in arrival order."""

        def proc():
            expected = [node for node in senders if node != root]
            for node in expected:
                payload = payload_of(node) if payload_of else None
                self.transport.send(node, root, size_of(node), payload, tag=tag)
            received: Dict[str, Any] = {}
            for _ in expected:
                msg = yield self.transport.recv(root, tag=tag)
                received[msg.src] = msg.payload
            return received

        return self.env.process(proc(), name=f"gather:{root}")

    def allgather(
        self,
        nodes: Sequence[str],
        size_of: Callable[[str], float],
        tag: str = TAG_DATA,
    ):
        """Every node sends its part to every other node (n·(n-1) msgs)."""

        def proc():
            sends = []
            for src in nodes:
                for dst in nodes:
                    if src != dst:
                        sends.append(
                            self.transport.send(src, dst, size_of(src), None, tag=tag)
                        )
            if sends:
                yield self.env.all_of(sends)
            return None

        return self.env.process(proc(), name="allgather")

    def reduce(
        self,
        root: str,
        contributions: Dict[str, tuple],
        combine: Callable[[Any, Any], Any],
        tag: str = TAG_DATA,
    ):
        """Each contributor sends (payload, size); root folds payloads
        with ``combine``.  Returns a Process whose value is the folded
        result (root's own contribution included if present)."""

        def proc():
            acc = None
            have_acc = False
            if root in contributions:
                acc = contributions[root][0]
                have_acc = True
            expected = [n for n in contributions if n != root]
            for node in expected:
                payload, size = contributions[node]
                self.transport.send(node, root, size, payload, tag=tag)
            for _ in expected:
                msg = yield self.transport.recv(root, tag=tag)
                if have_acc:
                    acc = combine(acc, msg.payload)
                else:
                    acc, have_acc = msg.payload, True
            return acc

        return self.env.process(proc(), name=f"reduce:{root}")
