"""Point-to-point messaging over the simulated fabric.

The API shape deliberately mirrors mpi4py's send/recv with tags: a
process calls ``yield transport.send(...)`` to block until the message
is on the destination's mailbox, and ``yield transport.recv(...)`` to
block until a matching message arrives.  An RPC convenience couples a
request with a tagged reply, which is how the active-storage client
talks to the AS helper processes on the storage servers.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import LinkDownError, NodeDownError
from ..sim import Environment, FilterStore
from ..sim.monitor import MonitorHub
from ..sim.resources import StoreGet
from .fabric import Fabric
from .message import TAG_DATA, TAG_RPC, TAG_RPC_REPLY, Message


class MailboxGet(StoreGet):
    """A structured mailbox receive.

    Carries the match criteria (``tag``, ``reply_to``, residual
    ``match`` callable) as plain attributes so :meth:`Mailbox._match`
    can test candidate messages inline instead of paying a Python call
    per scanned (waiter, item) pair.
    """

    __slots__ = ("tag", "reply_to", "match")

    def __init__(self, store: "Mailbox", tag, reply_to, match):
        self.tag = tag
        self.reply_to = reply_to
        self.match = match
        super().__init__(store)


class Mailbox(FilterStore):
    """A node's message queue with attribute-indexed matching.

    Semantics are exactly :class:`FilterStore` with the predicate
    ``(tag is None or m.tag == tag) and (reply_to is None or
    m.reply_to == reply_to) and (match is None or match(m))`` — waiters
    are scanned in FIFO order and each takes the first matching item —
    but the common tag-only and RPC-reply waits never call a predicate.
    """

    def get(self, tag=None, reply_to=None, match=None) -> MailboxGet:  # type: ignore[override]
        return MailboxGet(self, tag, reply_to, match)

    def _match(self, waiters):
        items = self.items
        for wi, get in enumerate(waiters):
            tag = get.tag
            rid = get.reply_to
            fn = get.match
            if fn is None:
                if rid is None:
                    if tag is None:
                        waiters.pop(wi)
                        item = items.pop(0)
                        get.succeed(item)
                        return get
                    for ii, item in enumerate(items):
                        if item.tag == tag:
                            waiters.pop(wi)
                            items.pop(ii)
                            get.succeed(item)
                            return get
                else:
                    # RPC reply wait: reply_to is the discriminating key.
                    for ii, item in enumerate(items):
                        if item.reply_to == rid and (tag is None or item.tag == tag):
                            waiters.pop(wi)
                            items.pop(ii)
                            get.succeed(item)
                            return get
            else:
                for ii, item in enumerate(items):
                    if (
                        (tag is None or item.tag == tag)
                        and (rid is None or item.reply_to == rid)
                        and fn(item)
                    ):
                        waiters.pop(wi)
                        items.pop(ii)
                        get.succeed(item)
                        return get
        return None


class Transport:
    """Delivers :class:`Message` objects between nodes with timing."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        monitors: MonitorHub,
        rpc_overhead: float = 0.0,
    ):
        self.env = env
        self.fabric = fabric
        self.monitors = monitors
        self.rpc_overhead = float(rpc_overhead)
        self._mailboxes: dict[str, Mailbox] = {}
        # Lazily-bound counter handles (first-touch creation order is
        # preserved; see NIC.account_tx for the pattern's rationale).
        self._loopback_counter = None
        self._flow_counters: dict = {}
        self._tag_counters: dict = {}

    def mailbox(self, node: str) -> Mailbox:
        box = self._mailboxes.get(node)
        if box is None:
            box = Mailbox(self.env)
            self._mailboxes[node] = box
        return box

    # -- sending ---------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        size: float,
        payload: Any = None,
        tag: str = TAG_DATA,
        reply_to: Optional[int] = None,
    ):
        """Start a transfer; returns a Process event that completes (with
        the delivered :class:`Message`) once the bytes are on ``dst``'s
        mailbox.  ``yield`` it to block, or fire-and-forget it."""
        msg = Message(
            src=src, dst=dst, size=float(size), tag=tag, payload=payload, reply_to=reply_to
        )
        return self.env.process(self._send_proc(msg))

    def send_gen(
        self,
        src: str,
        dst: str,
        size: float,
        payload: Any = None,
        tag: str = TAG_DATA,
        reply_to: Optional[int] = None,
    ):
        """Generator form of :meth:`send` for ``yield from`` composition.

        Runs the transfer inside the *calling* process instead of
        spawning a child process — the hot-path form when the caller
        blocks on the send anyway (no fire-and-forget, no racing)."""
        msg = Message(
            src=src, dst=dst, size=float(size), tag=tag, payload=payload, reply_to=reply_to
        )
        return self._send_proc(msg)

    def _send_proc(self, msg: Message):
        msg.sent_at = self.env.now
        if msg.src == msg.dst:
            # Loopback: no NIC traversal, no wire bytes.
            c = self._loopback_counter
            if c is None:
                c = self._loopback_counter = self.monitors.counter("net.loopback_bytes")
            c.add(msg.size)
            yield self.mailbox(msg.dst).put(msg)
            return msg

        src_nic = self.fabric.nic_of(msg.src)
        dst_nic = self.fabric.nic_of(msg.dst)
        if not dst_nic.is_up:
            raise NodeDownError(f"destination node {msg.dst!r} is down")
        if not src_nic.is_up:
            raise NodeDownError(f"source node {msg.src!r} is down")
        if not self.fabric.link_up(msg.src, msg.dst):
            raise LinkDownError(f"link {msg.src!r}<->{msg.dst!r} is cut")

        flow_token = self.fabric.admit()
        try:
            if flow_token is not None:
                yield flow_token
            yield self.env.timeout(src_nic.latency)
            if not dst_nic.is_up:  # went down while the head was in flight
                raise NodeDownError(f"destination node {msg.dst!r} is down")
            yield self.fabric.transfer(msg.src, msg.dst, msg.size)
        finally:
            self.fabric.release(flow_token)

        src_nic.account_tx(msg.size)
        dst_nic.account_rx(msg.size)
        monitors = self.monitors
        flow_key = (msg.src, msg.dst)
        c = self._flow_counters.get(flow_key)
        if c is None:
            c = self._flow_counters[flow_key] = monitors.counter(
                f"net.flow.{msg.src}->{msg.dst}"
            )
        c.add(msg.size)
        c = self._tag_counters.get(msg.tag)
        if c is None:
            c = self._tag_counters[msg.tag] = monitors.counter(f"net.tag.{msg.tag}")
        c.add(msg.size)
        if monitors.trace_enabled:
            monitors.log("net", f"{msg.src}->{msg.dst}", size=msg.size, tag=msg.tag)
        yield self.mailbox(msg.dst).put(msg)
        return msg

    # -- receiving ---------------------------------------------------------------
    def recv(
        self,
        node: str,
        tag: Optional[str] = None,
        match: Optional[Callable[[Message], bool]] = None,
        reply_to: Optional[int] = None,
    ):
        """An event yielding the next mailbox message that matches
        ``tag``, ``reply_to`` and ``match`` (each optional)."""
        return self.mailbox(node).get(tag, reply_to, match)

    # -- RPC ------------------------------------------------------------------------
    def call(
        self,
        src: str,
        dst: str,
        payload: Any,
        request_size: float,
        tag: str = TAG_RPC,
    ):
        """Request/response round trip; returns a Process event whose
        value is the reply :class:`Message`."""
        return self.env.process(self._call_proc(src, dst, payload, request_size, tag))

    def call_gen(self, src: str, dst: str, payload: Any, request_size: float, tag: str = TAG_RPC):
        """Generator form of :meth:`call` for ``yield from`` composition
        (see :meth:`send_gen`)."""
        return self._call_proc(src, dst, payload, request_size, tag)

    def _call_proc(self, src: str, dst: str, payload: Any, request_size: float, tag: str):
        sent = yield from self.send_gen(src, dst, request_size, payload, tag=tag)
        reply = yield self.recv(src, tag=TAG_RPC_REPLY, reply_to=sent.msg_id)
        return reply

    def reply(self, request: Message, payload: Any, size: float):
        """Send an RPC reply correlated to ``request``; adds the
        configured per-RPC software overhead before the wire transfer."""
        return self.env.process(self._reply_proc(request, payload, size))

    def reply_gen(self, request: Message, payload: Any, size: float):
        """Generator form of :meth:`reply` for ``yield from`` composition
        (see :meth:`send_gen`)."""
        return self._reply_proc(request, payload, size)

    def _reply_proc(self, request: Message, payload: Any, size: float):
        if self.rpc_overhead:
            yield self.env.timeout(self.rpc_overhead)
        msg = yield from self.send_gen(
            request.dst,
            request.src,
            size,
            payload,
            tag=TAG_RPC_REPLY,
            reply_to=request.msg_id,
        )
        return msg
