"""Point-to-point messaging over the simulated fabric.

The API shape deliberately mirrors mpi4py's send/recv with tags: a
process calls ``yield transport.send(...)`` to block until the message
is on the destination's mailbox, and ``yield transport.recv(...)`` to
block until a matching message arrives.  An RPC convenience couples a
request with a tagged reply, which is how the active-storage client
talks to the AS helper processes on the storage servers.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import LinkDownError, NodeDownError
from ..sim import Environment, FilterStore
from ..sim.monitor import MonitorHub
from .fabric import Fabric
from .message import TAG_DATA, TAG_RPC, TAG_RPC_REPLY, Message


class Transport:
    """Delivers :class:`Message` objects between nodes with timing."""

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        monitors: MonitorHub,
        rpc_overhead: float = 0.0,
    ):
        self.env = env
        self.fabric = fabric
        self.monitors = monitors
        self.rpc_overhead = float(rpc_overhead)
        self._mailboxes: dict[str, FilterStore] = {}

    def mailbox(self, node: str) -> FilterStore:
        box = self._mailboxes.get(node)
        if box is None:
            box = FilterStore(self.env)
            self._mailboxes[node] = box
        return box

    # -- sending ---------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        size: float,
        payload: Any = None,
        tag: str = TAG_DATA,
        reply_to: Optional[int] = None,
    ):
        """Start a transfer; returns a Process event that completes (with
        the delivered :class:`Message`) once the bytes are on ``dst``'s
        mailbox.  ``yield`` it to block, or fire-and-forget it."""
        msg = Message(
            src=src, dst=dst, size=float(size), tag=tag, payload=payload, reply_to=reply_to
        )
        return self.env.process(self._send_proc(msg), name=f"send:{src}->{dst}:{tag}")

    def _send_proc(self, msg: Message):
        msg.sent_at = self.env.now
        if msg.src == msg.dst:
            # Loopback: no NIC traversal, no wire bytes.
            self.monitors.counter("net.loopback_bytes").add(msg.size)
            yield self.mailbox(msg.dst).put(msg)
            return msg

        src_nic = self.fabric.nic_of(msg.src)
        dst_nic = self.fabric.nic_of(msg.dst)
        if not dst_nic.is_up:
            raise NodeDownError(f"destination node {msg.dst!r} is down")
        if not src_nic.is_up:
            raise NodeDownError(f"source node {msg.src!r} is down")
        if not self.fabric.link_up(msg.src, msg.dst):
            raise LinkDownError(f"link {msg.src!r}<->{msg.dst!r} is cut")

        flow_token = self.fabric.admit()
        try:
            if flow_token is not None:
                yield flow_token
            yield self.env.timeout(src_nic.latency)
            if not dst_nic.is_up:  # went down while the head was in flight
                raise NodeDownError(f"destination node {msg.dst!r} is down")
            yield self.fabric.transfer(msg.src, msg.dst, msg.size)
        finally:
            self.fabric.release(flow_token)

        src_nic.account_tx(msg.size)
        dst_nic.account_rx(msg.size)
        self.monitors.counter(f"net.flow.{msg.src}->{msg.dst}").add(msg.size)
        self.monitors.counter(f"net.tag.{msg.tag}").add(msg.size)
        self.monitors.log("net", f"{msg.src}->{msg.dst}", size=msg.size, tag=msg.tag)
        yield self.mailbox(msg.dst).put(msg)
        return msg

    # -- receiving ---------------------------------------------------------------
    def recv(
        self,
        node: str,
        tag: Optional[str] = None,
        match: Optional[Callable[[Message], bool]] = None,
    ):
        """An event yielding the next mailbox message that matches
        ``tag`` (if given) and ``match`` (if given)."""

        def predicate(msg: Message) -> bool:
            if tag is not None and msg.tag != tag:
                return False
            if match is not None and not match(msg):
                return False
            return True

        return self.mailbox(node).get(predicate)

    # -- RPC ------------------------------------------------------------------------
    def call(
        self,
        src: str,
        dst: str,
        payload: Any,
        request_size: float,
        tag: str = TAG_RPC,
    ):
        """Request/response round trip; returns a Process event whose
        value is the reply :class:`Message`."""
        return self.env.process(
            self._call_proc(src, dst, payload, request_size, tag),
            name=f"rpc:{src}->{dst}",
        )

    def _call_proc(self, src: str, dst: str, payload: Any, request_size: float, tag: str):
        sent = yield self.send(src, dst, request_size, payload, tag=tag)
        reply = yield self.recv(
            src, tag=TAG_RPC_REPLY, match=lambda m: m.reply_to == sent.msg_id
        )
        return reply

    def reply(self, request: Message, payload: Any, size: float):
        """Send an RPC reply correlated to ``request``; adds the
        configured per-RPC software overhead before the wire transfer."""
        return self.env.process(
            self._reply_proc(request, payload, size),
            name=f"reply:{request.dst}->{request.src}",
        )

    def _reply_proc(self, request: Message, payload: Any, size: float):
        if self.rpc_overhead:
            yield self.env.timeout(self.rpc_overhead)
        msg = yield self.send(
            request.dst,
            request.src,
            size,
            payload,
            tag=TAG_RPC_REPLY,
            reply_to=request.msg_id,
        )
        return msg
