"""Synthetic medical-style images for the filtering kernels.

A phantom built from smooth intensity blobs (tissue-like structures)
with optional Gaussian sensor noise and salt-and-pepper impulse noise —
the classic targets of the 2-D Gaussian and median filters in the
paper's Table I.
"""

from __future__ import annotations

import numpy as np


def phantom_image(
    rows: int,
    cols: int,
    n_blobs: int = 12,
    noise_sigma: float = 0.02,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A smooth multi-blob phantom in [0, 1] plus Gaussian noise."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"invalid image shape ({rows}, {cols})")
    rng = rng or np.random.default_rng(0)
    yy = np.linspace(-1.0, 1.0, rows)[:, None]
    xx = np.linspace(-1.0, 1.0, cols)[None, :]
    img = np.zeros((rows, cols), dtype=np.float64)
    for _ in range(n_blobs):
        cy, cx = rng.uniform(-0.8, 0.8, size=2)
        sy, sx = rng.uniform(0.05, 0.4, size=2)
        amp = rng.uniform(0.2, 1.0)
        img += amp * np.exp(-(((yy - cy) / sy) ** 2 + ((xx - cx) / sx) ** 2))
    peak = img.max()
    if peak > 0:
        img /= peak
    if noise_sigma:
        img = img + rng.normal(0.0, noise_sigma, size=img.shape)
    return np.ascontiguousarray(np.clip(img, 0.0, None))


def add_salt_pepper(
    image: np.ndarray,
    fraction: float = 0.01,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Corrupt a copy of ``image`` with impulse noise.

    ``fraction`` of the pixels are forced to the image min (pepper) or
    max (salt), half each — the noise model the median filter exists to
    remove.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
    rng = rng or np.random.default_rng(0)
    out = np.array(image, dtype=np.float64, copy=True)
    n = out.size
    k = int(round(n * fraction))
    if k == 0:
        return out
    idx = rng.choice(n, size=k, replace=False)
    flat = out.reshape(-1)
    half = k // 2
    flat[idx[:half]] = image.min()
    flat[idx[half:]] = image.max()
    return out
