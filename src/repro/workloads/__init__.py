"""Synthetic workload generators (DEMs, phantom images, size presets)."""

from .datasets import (
    DEFAULT_SCALE,
    PAPER_DATA_SIZES_GB,
    PAPER_NODE_COUNTS,
    DatasetSpec,
    dataset_for_label,
    raster_shape_for_bytes,
)
from .dem import fractal_dem, ramp_dem
from .imaging import add_salt_pepper, phantom_image

__all__ = [
    "DEFAULT_SCALE",
    "DatasetSpec",
    "PAPER_DATA_SIZES_GB",
    "PAPER_NODE_COUNTS",
    "add_salt_pepper",
    "dataset_for_label",
    "fractal_dem",
    "phantom_image",
    "ramp_dem",
    "raster_shape_for_bytes",
]
