"""Synthetic digital elevation models (DEMs).

The paper's terrain-analysis kernels (flow-routing, flow-accumulation,
slope) run over DEM rasters.  Real survey DEMs are not available
offline, so we synthesise fractal terrain with the standard spectral
method: white noise shaped by a ``1/f^beta`` power spectrum gives
fractional-Brownian-motion-like surfaces whose local statistics (and
hence kernel behaviour: neighbour comparisons, drainage structure)
match natural terrain well enough for bandwidth/performance studies —
every element still depends on its 8 neighbours in exactly the same
way.
"""

from __future__ import annotations

import numpy as np


def fractal_dem(
    rows: int,
    cols: int,
    beta: float = 2.2,
    relief: float = 1000.0,
    tilt: float = 0.25,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Spectral-synthesis fractal terrain.

    ``beta`` is the power-spectrum slope (2.0–2.4 resembles natural
    landscapes); ``relief`` scales elevations to [0, relief];
    ``tilt`` adds a regional gradient so drainage has a prevailing
    direction (keeps flow-routing from producing all-pit plateaus).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"invalid DEM shape ({rows}, {cols})")
    rng = rng or np.random.default_rng(0)
    noise = rng.standard_normal((rows, cols))
    spectrum = np.fft.rfft2(noise)
    fy = np.fft.fftfreq(rows)[:, None]
    fx = np.fft.rfftfreq(cols)[None, :]
    freq = np.hypot(fy, fx)
    freq[0, 0] = np.inf  # kill the DC term
    spectrum *= freq ** (-beta / 2.0)
    surface = np.fft.irfft2(spectrum, s=(rows, cols))

    lo, hi = surface.min(), surface.max()
    if hi > lo:
        surface = (surface - lo) / (hi - lo)
    surface *= relief
    if tilt:
        ramp = np.linspace(0.0, tilt * relief, rows)[:, None]
        surface = surface + ramp
    return np.ascontiguousarray(surface, dtype=np.float64)


def ramp_dem(rows: int, cols: int, noise: float = 0.0,
             rng: np.random.Generator | None = None) -> np.ndarray:
    """A deterministic inclined plane (plus optional jitter).

    Useful in tests: under a pure ramp every cell's steepest descent is
    the NW neighbour, so flow-routing output is fully predictable.
    """
    base = (
        np.arange(rows, dtype=np.float64)[:, None]
        + np.arange(cols, dtype=np.float64)[None, :]
    )
    if noise:
        rng = rng or np.random.default_rng(0)
        base = base + rng.uniform(-noise, noise, size=(rows, cols))
    return np.ascontiguousarray(base)
