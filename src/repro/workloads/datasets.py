"""Dataset sizing: mapping the paper's GB labels to simulated rasters.

The paper evaluates 24–60 GB datasets on 24–60 physical nodes.  The
reproduction keeps *real* NumPy data for functional correctness, so the
rasters are scaled down by :data:`DEFAULT_SCALE` (1 paper-GB ->
1 simulated MiB by default).  Because every cost in the simulation
(wire time, disk time, CPU time) is linear in bytes/elements, the
scheme *ratios* — which scheme wins and by how much — are invariant
under this scaling; only absolute seconds shrink.  The harness reports
both the simulated seconds and the label so results read like the
paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..units import GiB, MiB
from .dem import fractal_dem
from .imaging import add_salt_pepper, phantom_image

#: Simulated bytes per paper-GB.
DEFAULT_SCALE = 1 * MiB

#: The paper's dataset sizes (GB labels) used across Figs. 10, 12, 14.
PAPER_DATA_SIZES_GB = (24, 36, 48, 60)

#: The paper's node counts (Fig. 13); half are storage nodes.
PAPER_NODE_COUNTS = (24, 36, 48, 60)


def raster_shape_for_bytes(n_bytes: int, element_size: int = 8) -> Tuple[int, int]:
    """A near-square (rows, cols) raster of about ``n_bytes``.

    Rows and cols are chosen so ``rows * cols * element_size`` is as
    close to ``n_bytes`` as possible without exceeding it, keeping the
    raster wide enough that an 8-neighbour halo (one row) is small
    against a strip.
    """
    if n_bytes < element_size:
        raise ValueError(f"dataset of {n_bytes} bytes holds no elements")
    n_elements = n_bytes // element_size
    cols = max(1, int(math.sqrt(n_elements)))
    rows = max(1, n_elements // cols)
    return rows, cols


@dataclass(frozen=True)
class DatasetSpec:
    """One experiment dataset: a paper-scale label plus simulated shape."""

    label_gb: float
    rows: int
    cols: int
    kind: str = "dem"  # "dem" or "image"
    seed: int = 0

    @property
    def n_bytes(self) -> int:
        return self.rows * self.cols * 8

    @property
    def shape(self) -> Tuple[int, int]:
        return self.rows, self.cols

    def generate(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.kind == "dem":
            return fractal_dem(self.rows, self.cols, rng=rng)
        if self.kind == "image":
            return add_salt_pepper(
                phantom_image(self.rows, self.cols, rng=rng), fraction=0.01, rng=rng
            )
        raise ValueError(f"unknown dataset kind {self.kind!r}")


def dataset_for_label(
    label_gb: float,
    kind: str = "dem",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
) -> DatasetSpec:
    """The simulated dataset standing in for a paper ``label_gb`` GB file."""
    rows, cols = raster_shape_for_bytes(int(label_gb * scale))
    return DatasetSpec(label_gb=label_gb, rows=rows, cols=cols, kind=kind, seed=seed)
