#!/usr/bin/env python
"""Trace-smoke checker: exported traces must be loadable and sound.

Run from the repository root against a directory the harness filled
with ``--trace-dir``::

    PYTHONPATH=src python -m repro.harness serve-bench --trace-dir trace-out
    python scripts/check_trace.py trace-out

For every ``<label>.trace.json`` in the directory this asserts:

1. The document parses and passes :func:`repro.obs.validate.validate_trace`
   (required trace-event fields present, spans end after they start,
   parent sids exist, children nest inside their parents — detached
   spans excepted).
2. The trace is non-trivial: it carries spans, per-request tracks, and
   request root spans.
3. The sibling ``<label>.attribution.json`` exists and its critical-path
   report meets the acceptance bounds: span coverage of every sampled
   request >= MIN_COVERAGE and stage sums within MAX_ATTRIBUTION_ERROR
   of each request's latency.

Exits non-zero listing every problem found.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness.tracing import MAX_ATTRIBUTION_ERROR, MIN_COVERAGE  # noqa: E402
from repro.obs.validate import validate_trace  # noqa: E402


def check_trace_file(path: Path) -> List[str]:
    problems: List[str] = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]

    for issue in validate_trace(doc):
        problems.append(f"{path.name}: {issue}")

    events = doc.get("traceEvents") or []
    spans = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    instants = [e for e in events if isinstance(e, dict) and e.get("ph") == "i"]
    metadata = [e for e in events if isinstance(e, dict) and e.get("ph") == "M"]
    roots = [
        e for e in spans if (e.get("args") or {}).get("parent") is None
    ]
    if not spans:
        problems.append(f"{path.name}: no complete ('X') span events")
    if not roots:
        problems.append(f"{path.name}: no root spans")
    if not metadata:
        problems.append(f"{path.name}: no process/thread ('M') metadata")
    if (doc.get("otherData") or {}).get("clock") != "simulated":
        problems.append(f"{path.name}: otherData.clock is not 'simulated'")
    if not problems:
        print(
            f"  {path.name}: {len(spans)} spans, {len(instants)} instants,"
            f" {len(roots)} roots — structurally valid"
        )
    return problems


def check_attribution_file(path: Path) -> List[str]:
    problems: List[str] = []
    if not path.exists():
        return [f"{path.name}: missing (exporter should write it)"]
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]

    count = doc.get("requests", 0)
    if not count:
        problems.append(f"{path.name}: attribution covers zero requests")
        return problems
    coverage = doc.get("min_coverage")
    error = doc.get("max_attribution_error")
    if coverage is None or coverage < MIN_COVERAGE:
        problems.append(
            f"{path.name}: min span coverage {coverage!r}"
            f" below the {MIN_COVERAGE:.0%} acceptance bound"
        )
    if error is None or error > MAX_ATTRIBUTION_ERROR:
        problems.append(
            f"{path.name}: max attribution error {error!r}"
            f" above the {MAX_ATTRIBUTION_ERROR:.0%} acceptance bound"
        )
    if not problems:
        print(
            f"  {path.name}: {count} requests,"
            f" coverage >= {coverage:.4f}, error <= {error:.6f}"
        )
    return problems


def main(argv: List[str]) -> int:
    trace_dir = Path(argv[0]) if argv else REPO / "trace-out"
    if not trace_dir.is_dir():
        print(f"trace-check: no such directory {trace_dir}")
        return 1
    traces = sorted(trace_dir.glob("*.trace.json"))
    if not traces:
        print(f"trace-check: no *.trace.json files under {trace_dir}")
        return 1
    problems: List[str] = []
    for trace in traces:
        print(f"checking {trace.name}:")
        problems += check_trace_file(trace)
        attribution = trace.with_name(
            trace.name.replace(".trace.json", ".attribution.json")
        )
        problems += check_attribution_file(attribution)
    if problems:
        print(f"trace-check: {len(problems)} problem(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"trace-check: {len(traces)} trace(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
