#!/usr/bin/env python
"""Docs-consistency checker: links resolve, documented flags exist.

Run from the repository root (CI runs it on every push)::

    python scripts/check_docs.py

Two families of drift this catches:

1. **Internal links.**  Every relative markdown link — ``[text](path)``
   or ``[text](path#anchor)`` — in the checked documents must point at
   a file that exists, and when it carries an anchor, at a heading that
   renders to that anchor under GitHub's slug rules.

2. **CLI flags.**  Every ``--flag`` a document attributes to the
   harness must exist in ``repro.harness.runner.build_parser()``, in
   the scenario bench's own parser
   (``repro.harness.scenario_bench``), or in the report subcommand's
   (``repro.harness.report``).  Two places count as
   "attributing to the harness": fenced-code lines that invoke
   ``python -m repro.harness...`` or ``das-harness`` (line
   continuations followed), and inline code spans that consist of a
   flag, like ``--batch-max N``.  Flags belonging to other tools
   (pip, pytest) live in :data:`FOREIGN_FLAGS`.

3. **Scenario schema.**  docs/SCENARIOS.md must document every key of
   the scenario schema (``repro.scenarios.spec.SCHEMA_SECTIONS``),
   every declared check (``repro.scenarios.CHECKS``) and every shipped
   library scenario, each appearing somewhere as inline code; and
   every field-table row in that document (``| `token` | ...``) must
   name something the schema actually has — so the doc and the loader
   cannot drift apart in either direction.

Stdlib only (the flag/schema checks import the repo's own package);
exits non-zero listing every problem found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Documents swept for links and flags (relative to the repo root).
DOCUMENTS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/BENCHMARKS.md",
    "docs/OBSERVABILITY.md",
    "docs/OPERATIONS.md",
    "docs/PAPER_MAP.md",
    "docs/RESULTS.md",
    "docs/SCENARIOS.md",
)

#: The document held to the scenario-schema vocabulary.
SCENARIOS_DOC = "docs/SCENARIOS.md"

#: Inline-code flags that belong to other tools, not the harness.
FOREIGN_FLAGS = {
    "--no-build-isolation",  # pip
    "--benchmark-only",  # pytest-benchmark
    # scripts/profile_sim.py
    "--engine",
    "--sort",
    "--top",
    # scripts/check_regression.py
    "--baseline",
    "--candidate",
    "--files",
    "--wall-tolerance",
    "--no-wall",
    "--history-dir",
    "--throughput-tolerance",
    # scripts/check_results.py
    "--results",
    "--update",
    # scripts/check_telemetry.py
    "--expect-fired",
    "--expect-resolved",
}

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`([^`]+)`")
FLAG_RE = re.compile(r"--[a-zA-Z][\w-]*")
HARNESS_CMD_RE = re.compile(r"repro\.harness|das-harness")
TABLE_FIELD_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|")
CODE_TOKEN_RE = re.compile(r"[A-Za-z][\w-]*")


def _rel(doc: Path):
    """Repo-relative path for messages (the doc itself when outside the
    repo, as in the checker's own tests)."""
    try:
        return doc.relative_to(REPO)
    except ValueError:
        return doc


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (close enough: lowercase,
    drop everything but word characters/spaces/hyphens, spaces to
    hyphens)."""
    text = heading.strip().lstrip("#").strip()
    # Inline code/emphasis markers render to nothing in the anchor.
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> Set[str]:
    anchors: Set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            anchors.add(github_slug(line))
    return anchors


def check_links(doc: Path) -> List[str]:
    problems = []
    in_fence = False
    for lineno, line in enumerate(doc.read_text().splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            where = f"{_rel(doc)}:{lineno}"
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{where}: broken link {target!r}"
                        f" (no such file {path_part!r})"
                    )
                    continue
            else:
                resolved = doc
            if anchor and resolved.suffix == ".md":
                if anchor not in heading_anchors(resolved):
                    problems.append(
                        f"{where}: broken anchor {target!r}"
                        f" (no heading slugs to #{anchor})"
                    )
    return problems


def harness_flags() -> Set[str]:
    """Option strings of the real harness argparse parsers (the main
    runner, the scenario bench's standalone entry point, and the
    report subcommand)."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.harness import report, scenario_bench
    from repro.harness.runner import build_parser

    flags: Set[str] = set()
    for parser in (
        build_parser(),
        scenario_bench.build_parser(),
        report.build_parser(),
    ):
        for action in parser._actions:
            flags.update(action.option_strings)
    return flags


def documented_flags(doc: Path) -> List[Tuple[int, str, str]]:
    """(line, flag, context) for every flag the doc pins on the harness."""
    found = []
    in_fence = False
    continuation_is_harness = False
    for lineno, line in enumerate(doc.read_text().splitlines(), 1):
        stripped = line.strip()
        if FENCE_RE.match(stripped):
            in_fence = not in_fence
            continuation_is_harness = False
            continue
        if in_fence:
            is_harness = bool(HARNESS_CMD_RE.search(line)) or continuation_is_harness
            continuation_is_harness = is_harness and stripped.endswith("\\")
            if is_harness:
                for flag in FLAG_RE.findall(line):
                    found.append((lineno, flag, "command"))
        else:
            for span in INLINE_CODE_RE.findall(line):
                token = span.strip().split()[0] if span.strip() else ""
                if FLAG_RE.fullmatch(token) and token not in FOREIGN_FLAGS:
                    found.append((lineno, token, "inline"))
    return found


def check_flags(doc: Path, known: Set[str]) -> List[str]:
    return [
        f"{_rel(doc)}:{lineno}: documented flag {flag!r}"
        f" ({context}) does not exist in the harness parser"
        for lineno, flag, context in documented_flags(doc)
        if flag not in known
    ]


def scenario_vocabulary() -> Set[str]:
    """Every name the scenario subsystem declares: schema keys per
    section, check-catalog entries, shipped library scenarios."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.scenarios import CHECKS, library_names
    from repro.scenarios.spec import SCHEMA_SECTIONS

    vocab: Set[str] = set()
    for keys in SCHEMA_SECTIONS.values():
        vocab.update(keys)
    vocab.update(CHECKS)
    vocab.update(library_names())
    return vocab


def check_scenario_fields(doc: Path, vocab: Set[str]) -> List[str]:
    """Both drift directions between the scenario doc and the schema:
    every vocabulary token must appear as inline code somewhere in the
    doc, and every field-table row (``| `token` | ...``) must name
    something the schema actually has."""
    problems = []
    documented: Set[str] = set()
    in_fence = False
    for lineno, line in enumerate(doc.read_text().splitlines(), 1):
        stripped = line.strip()
        if FENCE_RE.match(stripped):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for span in INLINE_CODE_RE.findall(line):
            documented.update(CODE_TOKEN_RE.findall(span))
        row = TABLE_FIELD_RE.match(stripped)
        if row and row.group(1) not in vocab:
            problems.append(
                f"{_rel(doc)}:{lineno}: table documents {row.group(1)!r}"
                " but the scenario schema declares no such"
                " field/check/scenario"
            )
    for token in sorted(vocab - documented):
        problems.append(
            f"{_rel(doc)}: schema token {token!r} is never mentioned"
            " as inline code (document it or remove it from the schema)"
        )
    return problems


def main() -> int:
    known = harness_flags()
    problems: List[str] = []
    checked = 0
    for rel in DOCUMENTS:
        doc = REPO / rel
        if not doc.exists():
            problems.append(f"{rel}: listed in DOCUMENTS but missing")
            continue
        checked += 1
        problems += check_links(doc)
        problems += check_flags(doc, known)
        if rel == SCENARIOS_DOC:
            problems += check_scenario_fields(doc, scenario_vocabulary())
    if problems:
        print(f"docs-consistency: {len(problems)} problem(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(
        f"docs-consistency: {checked} documents clean"
        f" (links resolve, flags match the harness parser)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
