#!/usr/bin/env python
"""Counter-catalog checker: every runtime metric is declared and documented.

Run from the repository root (the docs-consistency CI job runs it on
every push; needs numpy, unlike ``check_docs.py``)::

    python scripts/check_counters.py

The check drives two short but *maximally messy* serving runs — a DAS
chaos storm (crash + slow disk + link cut, recovery armed, batching on)
and an autoscale cell (resize up and down) — so that every subsystem
books its counters and gauges: admission, DWRR, batching, the decision
cache, wire accounting, device busy-time, the strip caches, the fault
plane, and the autoscale controller.  Then it asserts:

1. **Declared** — :meth:`MetricRegistry.undeclared` is empty: every
   name booked in the MonitorHub is covered by an exact
   :class:`MetricSpec` or a declared family prefix in
   :data:`repro.metrics.registry.CATALOG`.
2. **Well-typed** — :meth:`MetricRegistry.mistyped` is empty: nothing
   is booked as a counter but declared a gauge (or vice versa).
3. **Documented** — every catalog name (family prefixes included)
   appears verbatim in ``docs/OPERATIONS.md``, so the operator-facing
   metric reference cannot silently drift from the code.

A new counter therefore ships in three places at once — the booking
site, the catalog, and the docs — or this check fails the build.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Short enough for CI, long enough that the storm's whole fault
#: schedule and at least one autoscale resize both land.
STORM_DURATION = 3.0
AUTOSCALE_DURATION = 6.0

OPERATIONS_DOC = REPO / "docs" / "OPERATIONS.md"


def storm_system():
    """A DAS chaos-storm run with batching on; returns the live system."""
    import numpy as np

    from repro.harness.chaos_bench import (
        CHAOS_DEADLINE,
        CHAOS_LOAD,
        CHAOS_RECOVERY,
        replicated_ingest,
        storm_plan,
    )
    from repro.harness.platform import ExperimentPlatform, build_platform
    from repro.harness.serve_bench import (
        RASTER,
        SERVE_NODES,
        SERVE_SPEC,
        SERVE_STRIP,
        serve_tenants,
    )
    from repro.serve import ServeConfig, ServeSystem
    from repro.workloads import fractal_dem

    platform = ExperimentPlatform(spec=SERVE_SPEC, strip_size=SERVE_STRIP)
    cluster, pfs = build_platform(SERVE_NODES, platform)
    rng = np.random.default_rng(platform.seed)
    for name in ("dem_a", "dem_b"):
        replicated_ingest(pfs, name, fractal_dem(*RASTER, rng=rng))
    config = ServeConfig(
        tenants=serve_tenants(),
        scheme="DAS",
        duration=STORM_DURATION,
        deadline=CHAOS_DEADLINE,
        load=CHAOS_LOAD,
        concurrency=8,
        queue_capacity=12,
        batch_max=8,
        faults=storm_plan(pfs, STORM_DURATION),
        recovery=CHAOS_RECOVERY,
        decision_ttl=1.0,
    )
    system = ServeSystem(pfs, config)
    system.run()
    return system


def autoscale_system():
    """An autoscale cell (resizes both ways); returns the live system."""
    from repro.harness.autoscale_bench import (
        MAX_SERVERS,
        MIN_SERVERS,
        autoscale_cell,
    )

    _, system = autoscale_cell(
        MIN_SERVERS, MAX_SERVERS, MIN_SERVERS, AUTOSCALE_DURATION
    )
    return system


def check_run(label: str, system) -> List[str]:
    problems = []
    registry = system.metrics
    booked = len(registry.monitors.counters) + len(registry.monitors.gauges)
    for name in registry.undeclared():
        problems.append(f"{label}: booked metric {name!r} is not in the catalog")
    for issue in registry.mistyped():
        problems.append(f"{label}: {issue}")
    if not registry.histograms:
        problems.append(f"{label}: no histograms were observed")
    if not problems:
        print(
            f"  {label}: {booked} booked counters/gauges all declared,"
            f" {len(registry.histograms)} histogram(s)"
        )
    return problems


def check_documented() -> List[str]:
    from repro.metrics.registry import CATALOG

    if not OPERATIONS_DOC.exists():
        return [f"{OPERATIONS_DOC.name}: missing"]
    text = OPERATIONS_DOC.read_text()
    problems = [
        f"docs/OPERATIONS.md: catalog metric {spec.name!r}"
        f" ({spec.kind}, {spec.unit}) is not documented"
        for spec in CATALOG
        if spec.name not in text
    ]
    if not problems:
        print(f"  docs/OPERATIONS.md documents all {len(CATALOG)} catalog entries")
    return problems


def main() -> int:
    problems: List[str] = []
    print("running chaos-storm cell (faults + batching + recovery):")
    problems += check_run("storm", storm_system())
    print("running autoscale cell (resize up/down):")
    problems += check_run("autoscale", autoscale_system())
    print("checking the catalog against docs/OPERATIONS.md:")
    problems += check_documented()
    if problems:
        print(f"counter-check: {len(problems)} problem(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print("counter-check: every runtime metric is declared and documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
