#!/usr/bin/env python
"""Counter-catalog checker: every runtime metric is declared and documented.

Run from the repository root (the docs-consistency CI job runs it on
every push; needs numpy, unlike ``check_docs.py``)::

    python scripts/check_counters.py

The check drives three short but *maximally messy* serving runs — the
``chaos-storm`` library scenario (crash + slow disk + link cut,
recovery armed, batching on, the telemetry sampler + alert engine
riding along via the scenario's alert gates), an autoscale cell
(resize up and down), and a 2-cell federated fleet (router probes,
spillover, long-tail fluid load, fleet-wide telemetry) — so that every
subsystem books its counters and gauges: admission, DWRR, batching,
the decision cache, wire accounting, device busy-time, the strip
caches, the fault plane, the autoscale controller, the fleet tier, and
the ``telemetry.*`` / ``alert.*`` meta-metrics.  Then it asserts:

1. **Declared** — :meth:`MetricRegistry.undeclared` is empty: every
   name booked in the MonitorHub is covered by an exact
   :class:`MetricSpec` or a declared family prefix in
   :data:`repro.metrics.registry.CATALOG`.
2. **Well-typed** — :meth:`MetricRegistry.mistyped` is empty: nothing
   is booked as a counter but declared a gauge (or vice versa).
3. **Documented** — every catalog name (family prefixes included)
   appears verbatim in ``docs/OPERATIONS.md``, so the operator-facing
   metric reference cannot silently drift from the code.

A new counter therefore ships in three places at once — the booking
site, the catalog, and the docs — or this check fails the build.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Short enough for CI, long enough that at least one autoscale resize
#: lands (the storm's schedule is pinned by its scenario document) and
#: the fleet cell sees its chaos round trip.
AUTOSCALE_DURATION = 6.0
FLEET_DURATION = 3.0

OPERATIONS_DOC = REPO / "docs" / "OPERATIONS.md"


def storm_system():
    """The chaos-storm library scenario, materialized; returns the live
    system.  The scenario document (``repro/scenarios/library/``) is the
    single source of the storm's shape — crash + slow disk + link cut,
    recovery armed, batching on — so this check exercises the same cell
    the scenario bench gates."""
    from repro.scenarios import build_scenario, load_scenario
    from repro.serve import ServeSystem

    pfs, config = build_scenario(load_scenario("chaos-storm"))
    system = ServeSystem(pfs, config)
    system.run()
    if system.telemetry is None:
        raise RuntimeError(
            "chaos-storm no longer declares alert gates, so the telemetry"
            " meta-metrics went unexercised — re-add an alert_* check or"
            " enable telemetry here explicitly"
        )
    return system


def autoscale_system():
    """An autoscale cell (resizes both ways); returns the live system."""
    from repro.harness.autoscale_bench import (
        MAX_SERVERS,
        MIN_SERVERS,
        autoscale_cell,
    )

    _, system = autoscale_cell(
        MIN_SERVERS, MAX_SERVERS, MIN_SERVERS, AUTOSCALE_DURATION
    )
    return system


def fleet_system():
    """A 2-cell federated run — chaos in one cell, long-tail fluid load,
    router probes and spillover — so the fleet tier books its ``fleet.*``
    counters and gauges; returns the live FleetSystem."""
    from repro.harness.fleet_bench import fleet_run, fleet_tenants
    from repro.telemetry import TelemetryConfig

    _, system = fleet_run(
        2,
        fleet_tenants(),
        FLEET_DURATION,
        policy="least-loaded",
        chaos_cell=0,
        longtail=True,
        telemetry=TelemetryConfig(),
    )
    return system


def check_fleet(system) -> List[str]:
    """The fleet hub (router/controller/long-tail metrics) plus every
    cell's own registry, histograms included."""
    problems = []
    registry = system.metrics
    booked = len(registry.monitors.counters) + len(registry.monitors.gauges)
    for name in registry.undeclared():
        problems.append(f"fleet: booked metric {name!r} is not in the catalog")
    for issue in registry.mistyped():
        problems.append(f"fleet: {issue}")
    if not problems:
        print(f"  fleet: {booked} booked counters/gauges all declared")
    for cell in system.cells:
        problems += check_run(f"fleet/{cell.name}", cell)
    return problems


def check_run(label: str, system, telemetry: bool = False) -> List[str]:
    problems = []
    registry = system.metrics
    booked = len(registry.monitors.counters) + len(registry.monitors.gauges)
    for name in registry.undeclared():
        problems.append(f"{label}: booked metric {name!r} is not in the catalog")
    for issue in registry.mistyped():
        problems.append(f"{label}: {issue}")
    if not registry.histograms:
        problems.append(f"{label}: no histograms were observed")
    if telemetry:
        # The sampler's own meta-metrics must land in the hub (and, via
        # the undeclared() sweep above, in the catalog).
        if "telemetry.samples" not in registry.monitors.counters:
            problems.append(f"{label}: sampler booked no telemetry.samples")
        if "alert.active" not in registry.monitors.gauges:
            problems.append(f"{label}: alert engine booked no alert.active")
    if not problems:
        print(
            f"  {label}: {booked} booked counters/gauges all declared,"
            f" {len(registry.histograms)} histogram(s)"
        )
    return problems


def check_documented() -> List[str]:
    from repro.metrics.registry import CATALOG

    if not OPERATIONS_DOC.exists():
        return [f"{OPERATIONS_DOC.name}: missing"]
    text = OPERATIONS_DOC.read_text()
    problems = [
        f"docs/OPERATIONS.md: catalog metric {spec.name!r}"
        f" ({spec.kind}, {spec.unit}) is not documented"
        for spec in CATALOG
        if spec.name not in text
    ]
    if not problems:
        print(f"  docs/OPERATIONS.md documents all {len(CATALOG)} catalog entries")
    return problems


def main() -> int:
    problems: List[str] = []
    print("running chaos-storm cell (faults + batching + recovery + telemetry):")
    problems += check_run("storm", storm_system(), telemetry=True)
    print("running autoscale cell (resize up/down):")
    problems += check_run("autoscale", autoscale_system())
    print("running federated fleet (2 cells, chaos + long-tail):")
    problems += check_fleet(fleet_system())
    print("checking the catalog against docs/OPERATIONS.md:")
    problems += check_documented()
    if problems:
        print(f"counter-check: {len(problems)} problem(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print("counter-check: every runtime metric is declared and documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
