#!/usr/bin/env python
"""Telemetry-smoke checker: exported telemetry artifacts must be sound.

Run from the repository root against a directory the harness filled
with ``--telemetry-dir``::

    PYTHONPATH=src python -m repro.harness serve-bench --telemetry-dir telemetry-out
    python scripts/check_telemetry.py telemetry-out

For every ``<label>.telemetry.json`` in the directory this asserts:

1. The document carries the ``repro.telemetry/1`` schema marker, a
   positive sampling interval, a positive sample count, and a horizon.
2. Every series is well-formed: a known kind (``counter`` / ``gauge`` /
   ``quantile``), strictly increasing timestamps, every timestamp on
   the ``k * interval`` boundary grid and within the horizon, and
   counter deltas never negative.
3. Every alert scope is well-formed: each ledger entry names a declared
   rule, resolves strictly after it fires (or not at all), and the
   per-rule fire/resolve sequence alternates (no double-fire without a
   resolve in between).

With ``--expect-fired``/``--expect-resolved`` (repeatable) the named
alert rules must appear fired / resolved in at least one artifact —
this is how CI pins "the storm pages availability" and "the autoscaler
resolves the burn" to the committed artifacts.

Exits non-zero listing every problem found.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Set, Tuple

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCHEMA = "repro.telemetry/1"

#: Series kinds the sampler emits (mirrors repro.telemetry.series.KINDS,
#: but kept literal so this script needs no numpy-importing package).
KINDS = ("counter", "gauge", "quantile")

#: Grid slack: boundaries are k * interval with integer k.
EPS = 1e-9


def _check_series(label: str, name: str, series: dict, interval: float,
                  horizon: float) -> List[str]:
    problems: List[str] = []
    kind = series.get("kind")
    if kind not in KINDS:
        problems.append(f"{label}: series {name!r} has unknown kind {kind!r}")
    points = series.get("points")
    if not isinstance(points, list):
        return problems + [f"{label}: series {name!r} has no points list"]
    prev_t = None
    for point in points:
        if not isinstance(point, list) or len(point) != 2:
            problems.append(
                f"{label}: series {name!r} has malformed point {point!r}"
            )
            break
        t, v = point
        if prev_t is not None and t <= prev_t:
            problems.append(
                f"{label}: series {name!r} timestamps not strictly"
                f" increasing at t={t:g}"
            )
            break
        prev_t = t
        ticks = t / interval
        if abs(ticks - round(ticks)) > 1e-6:
            problems.append(
                f"{label}: series {name!r} point t={t:g} off the"
                f" {interval:g}s boundary grid"
            )
            break
        if horizon is not None and t > horizon + EPS:
            problems.append(
                f"{label}: series {name!r} point t={t:g} past the"
                f" horizon {horizon:g}"
            )
            break
        if kind == "counter" and v < 0:
            problems.append(
                f"{label}: counter series {name!r} has negative delta"
                f" {v:g} at t={t:g}"
            )
            break
    return problems


def _check_alerts(label: str, alerts: dict) -> List[str]:
    problems: List[str] = []
    declared = {
        r.get("name") for r in alerts.get("rules", []) if isinstance(r, dict)
    }
    open_rules: Set[str] = set()
    for entry in alerts.get("ledger", []):
        rule = entry.get("rule")
        fired = entry.get("fired_at")
        resolved = entry.get("resolved_at")
        if rule not in declared:
            problems.append(
                f"{label}: ledger entry for undeclared rule {rule!r}"
            )
        if fired is None:
            problems.append(f"{label}: ledger entry for {rule!r} never fired")
            continue
        if rule in open_rules:
            problems.append(
                f"{label}: rule {rule!r} fired again at {fired:g} while"
                " still open (no resolve in between)"
            )
        if resolved is None:
            open_rules.add(rule)
        elif resolved <= fired:
            problems.append(
                f"{label}: rule {rule!r} resolved at {resolved:g}, not"
                f" strictly after its fire at {fired:g}"
            )
        else:
            open_rules.discard(rule)
    return problems


def check_telemetry_file(path: Path) -> Tuple[List[str], Set[str], Set[str]]:
    """-> (problems, fired rule names, resolved rule names)."""
    fired: Set[str] = set()
    resolved: Set[str] = set()
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"], fired, resolved

    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(
            f"{path.name}: schema is {doc.get('schema')!r}, not {SCHEMA!r}"
        )
    interval = doc.get("interval")
    if not isinstance(interval, (int, float)) or interval <= 0:
        return problems + [
            f"{path.name}: interval {interval!r} is not a positive number"
        ], fired, resolved
    if not isinstance(doc.get("samples"), int) or doc["samples"] <= 0:
        problems.append(f"{path.name}: sample count {doc.get('samples')!r}")
    horizon = doc.get("horizon")
    if not isinstance(horizon, (int, float)) or horizon <= 0:
        problems.append(f"{path.name}: horizon {horizon!r}")
        horizon = None

    scopes = doc.get("scopes")
    if not isinstance(scopes, dict) or not scopes:
        return problems + [f"{path.name}: no scopes"], fired, resolved
    n_series = n_points = n_ledger = 0
    for scope_name, scope in scopes.items():
        label = f"{path.name}[{scope_name}]"
        series = scope.get("series")
        if not isinstance(series, dict) or not series:
            problems.append(f"{label}: no series")
            continue
        n_series += len(series)
        for name, entry in series.items():
            n_points += len(entry.get("points") or [])
            problems += _check_series(label, name, entry, interval, horizon)
        alerts = scope.get("alerts")
        if alerts:
            problems += _check_alerts(label, alerts)
            n_ledger += len(alerts.get("ledger", []))
            for entry in alerts.get("ledger", []):
                if entry.get("fired_at") is not None:
                    fired.add(entry.get("rule"))
                if entry.get("resolved_at") is not None:
                    resolved.add(entry.get("rule"))
    if not problems:
        print(
            f"  {path.name}: {len(scopes)} scope(s), {n_series} series,"
            f" {n_points} points, {n_ledger} ledger entries — valid"
        )
    return problems, fired, resolved


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Validate --telemetry-dir artifacts."
    )
    parser.add_argument(
        "telemetry_dir", nargs="?", default=str(REPO / "telemetry-out"),
        help="directory of *.telemetry.json artifacts (default telemetry-out)",
    )
    parser.add_argument(
        "--expect-fired", action="append", default=[], metavar="RULE",
        help="alert rule that must appear fired in some artifact; repeatable",
    )
    parser.add_argument(
        "--expect-resolved", action="append", default=[], metavar="RULE",
        help="alert rule that must appear resolved in some artifact;"
        " repeatable",
    )
    args = parser.parse_args(argv)

    telemetry_dir = Path(args.telemetry_dir)
    if not telemetry_dir.is_dir():
        print(f"telemetry-check: no such directory {telemetry_dir}")
        return 1
    artifacts = sorted(telemetry_dir.glob("*.telemetry.json"))
    if not artifacts:
        print(f"telemetry-check: no *.telemetry.json under {telemetry_dir}")
        return 1
    problems: List[str] = []
    fired: Set[str] = set()
    resolved: Set[str] = set()
    for artifact in artifacts:
        print(f"checking {artifact.name}:")
        file_problems, file_fired, file_resolved = check_telemetry_file(artifact)
        problems += file_problems
        fired |= file_fired
        resolved |= file_resolved
    for rule in args.expect_fired:
        if rule not in fired:
            problems.append(
                f"expected alert rule {rule!r} to have fired"
                f" (fired: {sorted(fired) or 'none'})"
            )
    for rule in args.expect_resolved:
        if rule not in resolved:
            problems.append(
                f"expected alert rule {rule!r} to have resolved"
                f" (resolved: {sorted(resolved) or 'none'})"
            )
    if problems:
        print(f"telemetry-check: {len(problems)} problem(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"telemetry-check: {len(artifacts)} artifact(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
