#!/usr/bin/env python
"""Compare freshly generated BENCH_*.json payloads against baselines.

The acceptance gate for simulator changes: regenerate the benches into a
scratch directory, then run this script against the committed baselines
under ``benchmarks/``.  It enforces two different contracts:

* **Determinism** — everything except wall-clock must be *identical*:
  rows (simulated makespans, latency tails, byte counts, result-digest
  CRCs), shape-check claims and verdicts, event counts.  Any difference
  is a hard failure; an optimisation that changes simulated results is
  not an optimisation, it is a different simulator.

* **Performance** — the wall-clock fields (``wall_seconds`` /
  ``wall_seconds_total`` / ``*_per_wall_second``) are host-dependent, so
  they are stripped from the exact comparison and instead gated by a
  relative tolerance on each file's ``wall_seconds_total`` (default
  +20%).  Comparing walls across *different* hosts is only a smoke
  guard — pass a wider ``--wall-tolerance`` there, and treat the tight
  default as the bar for same-host before/after runs.

``--history-dir`` additionally keeps an **append-only ledger**: one
JSONL line per checked file per run (``benchmarks/history/<name>.jsonl``
holds the bench name, ``scale_kb``, ``events_dispatched_total``, the
wall total, events/wall-second, and the run's verdict).  Before
appending, the candidate is gated against the most recent *passing*
ledger entry at the same scale: ``events_dispatched_total`` must match
exactly (the event count is deterministic — any drift means the
simulator changed behind the baselines' back), and with
``--throughput-tolerance`` the events-per-wall-second figure may not
drop more than the given fraction below the recorded run (a
same-host-only gate, like ``--wall-tolerance``).

A **newly added bench** — a candidate file with no committed baseline
and no ledger yet — is not an error when ``--history-dir`` is given:
the baseline diff is skipped (there is nothing to diff against), the
run seeds the bench's ledger as its first recorded entry, and the file
passes.  The next run then has a reference.  Without ``--history-dir``
a missing baseline stays a hard failure, as before.

``--attribution-dir`` (default ``benchmarks/attribution``) additionally
gates the committed ``*.attribution.json`` tracer fixtures: every
fixture's span-tree coverage must stay at or above 95% of each finished
request's latency and its critical-path stage decomposition must sum to
each request's latency within 1% — the tracer's acceptance bounds,
re-enforced here so a simulator change cannot quietly erode them behind
the trace bench's back.  The headline figures are also re-derived from
the fixture's per-request rows, so a fixture edited by hand (or a
regeneration that drops rows) fails rather than being taken at its
word.  Pass an empty string to skip the gate.

Usage::

    PYTHONPATH=src python -m repro.harness all --bench-dir /tmp/bench
    python scripts/check_regression.py --candidate /tmp/bench
    python scripts/check_regression.py --candidate /tmp/bench --no-wall
    python scripts/check_regression.py --candidate /tmp/bench \
        --history-dir benchmarks/history --throughput-tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Host-dependent fields, stripped everywhere before the exact diff.
VOLATILE_KEYS = frozenset(
    {
        "wall_seconds",
        "wall_seconds_total",
        "events_per_wall_second",
        "requests_per_wall_second",
    }
)

#: Default relative wall-clock regression tolerance (+20%).
WALL_TOLERANCE = 0.20

#: Tracer acceptance bounds, mirrored from ``repro.harness.tracing``
#: (kept literal so this script stays stdlib-only).
MIN_COVERAGE = 0.95
MAX_ATTRIBUTION_ERROR = 0.01


def strip_volatile(doc):
    """Recursively drop the host-dependent keys from a payload."""
    if isinstance(doc, dict):
        return {
            k: strip_volatile(v) for k, v in doc.items() if k not in VOLATILE_KEYS
        }
    if isinstance(doc, list):
        return [strip_volatile(v) for v in doc]
    return doc


def diff_paths(a, b, path="$", out=None, limit=20):
    """Human-readable JSON-paths where two stripped payloads differ."""
    if out is None:
        out = []
    if len(out) >= limit:
        return out
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
    elif isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                out.append(f"{path}.{k}: only in candidate")
            elif k not in b:
                out.append(f"{path}.{k}: only in baseline")
            else:
                diff_paths(a[k], b[k], f"{path}.{k}", out, limit)
            if len(out) >= limit:
                break
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        else:
            for i, (x, y) in enumerate(zip(a, b)):
                diff_paths(x, y, f"{path}[{i}]", out, limit)
                if len(out) >= limit:
                    break
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")
    return out


def check_file(baseline: Path, candidate: Path, wall_tolerance, check_wall: bool):
    """Returns a list of failure strings (empty = pass) for one file."""
    base = json.loads(baseline.read_text())
    cand = json.loads(candidate.read_text())
    failures = []

    if base.get("scale_kb") != cand.get("scale_kb"):
        return [
            f"scale_kb mismatch (baseline {base.get('scale_kb')},"
            f" candidate {cand.get('scale_kb')}) — payloads are not comparable;"
            " regenerate at the baseline's scale"
        ]

    drift = diff_paths(strip_volatile(cand), strip_volatile(base))
    if drift:
        failures.append("deterministic payload drift:")
        failures.extend(f"  {d}" for d in drift)

    if check_wall:
        base_wall = float(base.get("wall_seconds_total", 0.0))
        cand_wall = float(cand.get("wall_seconds_total", 0.0))
        if base_wall > 0 and cand_wall > base_wall * (1.0 + wall_tolerance):
            failures.append(
                f"wall-clock regression: {cand_wall:.3f}s vs baseline"
                f" {base_wall:.3f}s (>{wall_tolerance:.0%} over)"
            )
        else:
            print(
                f"  wall {cand_wall:.3f}s vs baseline {base_wall:.3f}s"
                f" (tolerance +{wall_tolerance:.0%})"
            )
    return failures


def check_attribution_file(path: Path):
    """Gate one committed attribution fixture; returns failure strings."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable ({exc})"]
    failures = []
    rows = doc.get("per_request") or []
    requests = doc.get("requests")
    if not rows or requests != len(rows):
        failures.append(
            f"per-request table has {len(rows)} rows but claims"
            f" {requests} requests"
        )
    min_cov = doc.get("min_coverage")
    max_err = doc.get("max_attribution_error")
    if not isinstance(min_cov, (int, float)) or min_cov < MIN_COVERAGE:
        failures.append(
            f"span coverage floor {min_cov!r} below the"
            f" {MIN_COVERAGE:.0%} acceptance bound"
        )
    if not isinstance(max_err, (int, float)) or max_err > MAX_ATTRIBUTION_ERROR:
        failures.append(
            f"attribution error {max_err!r} above the"
            f" {MAX_ATTRIBUTION_ERROR:.0%} acceptance bound"
        )
    if rows and not failures:
        # Re-derive the headlines so an edited fixture can't vouch for
        # itself.  Coverage is defined over finished requests only.
        finished = [
            r for r in rows if r.get("outcome") not in ("expired", "failed")
        ]
        derived_cov = min((r.get("coverage", 0.0) for r in finished), default=0.0)
        if finished and derived_cov < min_cov - 1e-9:
            failures.append(
                f"per-request rows put min coverage at {derived_cov:.4f},"
                f" below the headline {min_cov:.4f}"
            )
    if not failures:
        print(
            f"  {path.name}: {len(rows)} request(s), coverage >="
            f" {min_cov:.4f}, attribution error <= {max_err:.6f}"
        )
    return failures


def check_attribution_dir(attribution_dir: Path):
    """Gate every committed ``*.attribution.json`` fixture."""
    fixtures = sorted(attribution_dir.glob("*.attribution.json"))
    if not fixtures:
        return [f"{attribution_dir}/: no *.attribution.json fixtures"]
    failures = []
    for path in fixtures:
        failures += [f"{path.name}: {f}" for f in check_attribution_file(path)]
    return failures


def history_gate(
    history_dir: Path,
    name: str,
    cand: dict,
    file_ok: bool,
    throughput_tolerance,
):
    """Gate ``cand`` against the ledger, then append this run to it.

    Returns the list of history failures.  The appended entry records
    the final verdict (file checks *and* history gates), and only
    passing entries are compared against later — a bad run is logged
    but never becomes the reference.
    """
    failures = []
    path = history_dir / (Path(name).stem + ".jsonl")
    prior = None
    if path.exists():
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            entry = json.loads(line)
            if (
                entry.get("scale_kb") == cand.get("scale_kb")
                and entry.get("checks_pass")
            ):
                prior = entry  # last passing run at this scale wins
    if prior is not None:
        base_events = prior.get("events_dispatched_total")
        cand_events = cand.get("events_dispatched_total")
        if base_events is not None and cand_events != base_events:
            failures.append(
                f"events-dispatched drift vs history: {cand_events} !="
                f" {base_events} (last passing run at scale_kb"
                f" {cand.get('scale_kb')})"
            )
        if throughput_tolerance is not None:
            base_eps = float(prior.get("events_per_wall_second") or 0.0)
            cand_eps = float(cand.get("events_per_wall_second") or 0.0)
            if base_eps > 0 and cand_eps < base_eps * (1.0 - throughput_tolerance):
                failures.append(
                    f"throughput regression vs history: {cand_eps:.0f}"
                    f" events/wall-second vs {base_eps:.0f} recorded"
                    f" (>{throughput_tolerance:.0%} below)"
                )
        if not failures:
            print(
                f"  history: events {cand.get('events_dispatched_total')}"
                f" match the last passing run"
            )
    else:
        print(f"  history: first recorded run at scale_kb {cand.get('scale_kb')}")
    history_dir.mkdir(parents=True, exist_ok=True)
    entry = {
        "bench": cand.get("bench"),
        "scale_kb": cand.get("scale_kb"),
        "events_dispatched_total": cand.get("events_dispatched_total"),
        "wall_seconds_total": cand.get("wall_seconds_total"),
        "events_per_wall_second": cand.get("events_per_wall_second"),
        "checks_pass": file_ok and not failures,
    }
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="benchmarks", metavar="DIR",
                        help="directory of committed baselines (default benchmarks/)")
    parser.add_argument("--candidate", required=True, metavar="DIR",
                        help="directory of freshly generated BENCH files")
    parser.add_argument("--files", nargs="*", default=None, metavar="NAME",
                        help="specific BENCH_*.json names (default: every"
                             " baseline file present in the candidate dir)")
    parser.add_argument("--wall-tolerance", type=float, default=WALL_TOLERANCE,
                        help="relative wall_seconds_total regression allowed"
                             " (default 0.20 = +20%%)")
    parser.add_argument("--no-wall", action="store_true",
                        help="skip the wall-clock gate (determinism only)")
    parser.add_argument("--history-dir", default=None, metavar="DIR",
                        help="append-only JSONL perf ledger; gates the"
                             " candidate's events_dispatched_total against"
                             " the last passing run at the same scale")
    parser.add_argument("--throughput-tolerance", type=float, default=None,
                        metavar="FRACTION",
                        help="with --history-dir: allowed relative drop in"
                             " events_per_wall_second vs the last passing"
                             " run (same-host only; off by default)")
    parser.add_argument("--attribution-dir", default="benchmarks/attribution",
                        metavar="DIR",
                        help="committed *.attribution.json fixtures to gate"
                             " on the tracer's coverage/attribution bounds"
                             " (default benchmarks/attribution; empty"
                             " string skips)")
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline)
    candidate_dir = Path(args.candidate)
    if args.files:
        names = args.files
    else:
        names = sorted(
            p.name
            for p in baseline_dir.glob("BENCH_*.json")
            if (candidate_dir / p.name).exists()
        )
        if args.history_dir is not None:
            # With a ledger, candidate-only files are newly added benches
            # to seed, not strays to ignore.
            names = sorted(
                set(names) | {p.name for p in candidate_dir.glob("BENCH_*.json")}
            )
    if not names:
        print(
            f"no BENCH_*.json files to compare between {baseline_dir}/"
            f" and {candidate_dir}/",
            file=sys.stderr,
        )
        return 2

    failed = 0
    for name in names:
        base_path = baseline_dir / name
        cand_path = candidate_dir / name
        new_bench = not base_path.exists() and args.history_dir is not None
        missing = [
            str(p)
            for p in (base_path, cand_path)
            if not p.exists() and not (new_bench and p is base_path)
        ]
        if missing:
            print(f"FAIL {name}: missing {', '.join(missing)}")
            failed += 1
            continue
        if new_bench:
            print(
                f"checking {name} ... no committed baseline — newly added"
                " bench, seeding its history ledger"
            )
            failures = []
        else:
            print(f"checking {name} ...")
            failures = check_file(
                base_path, cand_path, args.wall_tolerance, not args.no_wall
            )
        if args.history_dir is not None:
            failures += history_gate(
                Path(args.history_dir),
                name,
                json.loads(cand_path.read_text()),
                file_ok=not failures,
                throughput_tolerance=args.throughput_tolerance,
            )
        if failures:
            failed += 1
            print(f"FAIL {name}:")
            for line in failures:
                print(f"  {line}")
        else:
            print(f"PASS {name}")
    if args.attribution_dir:
        attribution_dir = Path(args.attribution_dir)
        if attribution_dir.is_dir():
            print(f"checking attribution fixtures under {attribution_dir}/ ...")
            attribution_failures = check_attribution_dir(attribution_dir)
            if attribution_failures:
                failed += 1
                names.append(str(attribution_dir))
                print(f"FAIL {attribution_dir}/:")
                for line in attribution_failures:
                    print(f"  {line}")
            else:
                print(f"PASS {attribution_dir}/")
    if failed:
        print(f"{failed}/{len(names)} BENCH file(s) failed", file=sys.stderr)
        return 1
    print(f"all {len(names)} BENCH file(s) match their baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
