#!/usr/bin/env python
"""Profile one serving cell (or one engine microbenchmark) under cProfile.

The first tool to reach for when the simulator feels slow.  Runs a
single deterministic workload — the same cell shapes the benches use —
inside ``cProfile`` and prints the top functions by cumulative or
internal time.  See docs/BENCHMARKS.md ("Profiling the simulator") for
how to read the output and which layers usually dominate.

Examples::

    python scripts/profile_sim.py                         # DAS x2.0 cell
    python scripts/profile_sim.py --scheme NAS --load 1.0 --sort tottime
    python scripts/profile_sim.py --engine timeout-storm --top 15
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scheme", default="DAS", choices=("TS", "NAS", "DAS"),
                        help="serving scheme of the profiled cell (default DAS)")
    parser.add_argument("--load", type=float, default=2.0,
                        help="offered-load multiplier (default 2.0)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="simulated seconds of offered load (default 6.0)")
    parser.add_argument("--batch-max", type=int, default=1,
                        help="request batch window (default 1 = off)")
    parser.add_argument("--engine", default=None, metavar="WORKLOAD",
                        help="profile an engine microbenchmark instead of a"
                             " serving cell (see repro.harness.engine_bench)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort order (default cumulative)")
    parser.add_argument("--top", type=int, default=30,
                        help="functions to print (default 30)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also dump raw stats to FILE (snakeviz-loadable)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.engine is not None:
        from repro.harness.engine_bench import ENGINE_WORKLOADS

        workloads = {name: (fn, shape) for name, fn, shape in ENGINE_WORKLOADS}
        if args.engine not in workloads:
            print(f"unknown engine workload {args.engine!r};"
                  f" available: {sorted(workloads)}", file=sys.stderr)
            return 2
        fn, shape = workloads[args.engine]
        target = lambda: fn(*shape)  # noqa: E731
        label = f"engine:{args.engine} {'x'.join(map(str, shape))}"
    else:
        from repro.harness.serve_bench import serve_cell

        target = lambda: serve_cell(  # noqa: E731
            args.scheme, args.load, duration=args.duration,
            batch_max=args.batch_max,
        )
        label = (f"serve:{args.scheme} x{args.load:g}"
                 f" d{args.duration:g} b{args.batch_max}")

    print(f"profiling {label} ...", file=sys.stderr)
    profiler = cProfile.Profile()
    profiler.enable()
    target()
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw stats written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
