#!/usr/bin/env python
"""Results drift gate: docs/RESULTS.md must regenerate byte-for-byte.

docs/RESULTS.md is a generated document — per-bench result tables,
run-over-run trend tables, critical-path flames and the paper-claims
mapping, all rendered from the committed measurement record
(``benchmarks/``, ``benchmarks/history/``, ``benchmarks/attribution/``)
by ``repro.report``.  It is never hand-edited; this script enforces
that by regenerating it in memory and requiring the result to equal
the committed file **byte for byte**.  Any drift — a bench payload
regenerated without the report, a hand edit, an emitter change — fails
with a unified diff.

CI runs this as the ``results-smoke`` job on every push.  To fix a
legitimate drift, regenerate and commit::

    PYTHONPATH=src python -m repro.harness report
    python scripts/check_results.py            # now passes

The emitter is deterministic (no timestamps or generating-host walls
in the output; volatile fields render as ranges over the committed
ledger), so byte-exactness is achievable and the gate is exact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results",
        default=str(REPO / "docs" / "RESULTS.md"),
        metavar="PATH",
        help="the committed report to check (default: docs/RESULTS.md)",
    )
    parser.add_argument(
        "--benchmarks-dir",
        default=str(REPO / "benchmarks"),
        metavar="DIR",
        help="committed BENCH_*.json snapshots (default: benchmarks/)",
    )
    parser.add_argument(
        "--history-dir",
        default=str(REPO / "benchmarks" / "history"),
        metavar="DIR",
        help="committed JSONL ledger (default: benchmarks/history/)",
    )
    parser.add_argument(
        "--attribution-dir",
        default=str(REPO / "benchmarks" / "attribution"),
        metavar="DIR",
        help=(
            "committed critical-path fixtures"
            " (default: benchmarks/attribution/)"
        ),
    )
    parser.add_argument(
        "--telemetry-dir",
        default=str(REPO / "benchmarks" / "telemetry"),
        metavar="DIR",
        help=(
            "committed sampler artifacts rendered as the health timeline"
            " (default: benchmarks/telemetry/)"
        ),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the regenerated report instead of checking",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    from repro.harness.report import drift_diff
    from repro.report import generate_results

    text = generate_results(
        bench_dir=args.benchmarks_dir,
        history_dir=args.history_dir,
        attribution_dir=args.attribution_dir,
        telemetry_dir=args.telemetry_dir,
    )
    results = Path(args.results)
    if args.update:
        results.write_text(text, encoding="utf-8")
        print(f"wrote {results} ({len(text.splitlines())} lines)")
        return 0
    if not results.exists():
        print(
            f"FAIL: {results} is missing — generate it with"
            " 'PYTHONPATH=src python -m repro.harness report'",
            file=sys.stderr,
        )
        return 1
    committed = results.read_text(encoding="utf-8")
    if committed != text:
        print(
            f"FAIL: {results} drifted from the committed inputs —"
            " regenerate it (PYTHONPATH=src python -m repro.harness"
            " report) and commit the result:",
            file=sys.stderr,
        )
        for line in drift_diff(committed, text, str(results)):
            print(line, file=sys.stderr)
        return 1
    print(
        f"{results.name} matches the committed benchmarks/, history and"
        " attribution inputs byte for byte"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
